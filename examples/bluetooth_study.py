#!/usr/bin/env python
"""Bluetooth propagation study (the paper's proposed extension).

The paper's conclusion proposes evaluating "response mechanisms for mobile
phone viruses that spread through means other than MMS messages, such as
viruses that spread using the Bluetooth interface".  This example does so
in two parts:

1. **Defense blind spots** — a pure Bluetooth worm in the core model:
   gateway scanning and blacklisting see no MMS traffic, so only user
   education and immunization remain effective.
2. **Mobility matters** — using the mobility substrate, the same worm is
   run under random mixing (fast movement) and spatially constrained
   random-waypoint movement at two densities, showing how locality slows
   a proximity virus.  Consent here follows the corrected semantics:
   *every* received offer advances a phone's ``AF/2^n`` decay counter,
   even when the recipient is already infected or immune — exactly like
   the core model's ``_receive``.
3. **Same story at scale** — the identical comparison on the xl engine's
   vectorized Bluetooth channel: random mixing vs the waypoint grid
   (``MobilityParameters``), at 20x the population.

Both mobility parts assert that locality slows the spread; the script
exits non-zero if that ordering ever breaks.

Run:  python examples/bluetooth_study.py          (~1 minute)
"""

from __future__ import annotations

import numpy as np

from repro.analysis import format_table
from repro.core import (
    GatewayScanConfig,
    ImmunizationConfig,
    MobilityParameters,
    NetworkParameters,
    ScenarioConfig,
    UserEducationConfig,
    UserParameters,
    VirusParameters,
    run_scenario,
)
from repro.core.user import PAPER_ACCEPTANCE_FACTOR, acceptance_probability
from repro.mobility import (
    ProximityEncounterProcess,
    RandomMixingEncounters,
    WaypointMobility,
    simulate_proximity_outbreak,
)


def part_one_defense_blind_spots() -> None:
    network = NetworkParameters(population=500, mean_contact_list_size=30.0)
    worm = VirusParameters(
        name="bluetooth-worm",
        min_send_interval=10_000.0,  # MMS channel effectively disabled
        bluetooth_rate=2.0,          # two encounters per hour while infected
    )
    base = ScenarioConfig(
        name="bluetooth-worm", virus=worm, network=network,
        user=UserParameters(read_delay_mean=0.5), duration=120.0,
    )
    seed = 19
    baseline = run_scenario(base, seed=seed)
    rows = [["(baseline)", baseline.total_infected, "100%"]]
    for label, config in [
        ("gateway scan, 1 h", GatewayScanConfig(1.0)),
        ("user education, half", UserEducationConfig(0.5)),
        ("immunization, 6+2 h", ImmunizationConfig(6.0, 2.0)),
    ]:
        result = run_scenario(base.with_responses(config), seed=seed)
        rows.append(
            [label, result.total_infected,
             f"{result.total_infected / baseline.total_infected:.0%}"]
        )
    print(
        format_table(
            ["defense", "final infected", "vs baseline"],
            rows,
            title="Part 1 — defenses against a pure Bluetooth worm "
            "(500 phones, 120 h)",
        )
    )
    print(
        "Reading: the MMS gateway never sees Bluetooth transfers, so the "
        "scan is a no-op; consent- and patch-based defenses still work.\n"
    )


def part_two_mobility() -> None:
    population = 120
    seed = 29
    horizon = 48.0

    def consent(times_offered: int) -> float:
        return acceptance_probability(PAPER_ACCEPTANCE_FACTOR, times_offered)

    regimes = {}
    regimes["random mixing"] = RandomMixingEncounters(
        population, np.random.default_rng(seed)
    )
    arenas = [("dense city (1 km²)", 1000.0), ("sparse town (3 km²)", 3000.0)]
    for index, (label, arena) in enumerate(arenas):
        mobility = WaypointMobility(
            num_phones=population,
            arena_size=arena,
            speed_range=(1000.0, 5000.0),  # 1-5 km/h in metres/hour
            pause_range=(0.0, 1.0),
            rng=np.random.default_rng(seed + 100 + index),
        )
        regimes[label] = ProximityEncounterProcess(
            mobility, bluetooth_radius=100.0, rng=np.random.default_rng(seed)
        )

    rows = []
    finals = {}
    for label, encounters in regimes.items():
        times = simulate_proximity_outbreak(
            encounters,
            susceptible=[True] * population,
            patient_zero=0,
            attempt_rate=2.0,
            acceptance_probability_fn=consent,
            horizon=horizon,
            rng=np.random.default_rng(seed),
        )
        availability = (
            f"{encounters.contact_availability():.0%}"
            if isinstance(encounters, ProximityEncounterProcess)
            else "100%"
        )
        finals[label] = len(times)
        rows.append([label, len(times), availability])
    print(
        format_table(
            ["mobility regime", "infected by 48 h", "encounter success"],
            rows,
            title=f"Part 2 — mobility constrains a proximity worm "
            f"({population} phones, Bluetooth range 100 m)",
        )
    )
    assert finals["sparse town (3 km²)"] <= finals["random mixing"], (
        "locality should slow the outbreak: sparse waypoint movement "
        f"infected {finals['sparse town (3 km²)']} phones vs "
        f"{finals['random mixing']} under random mixing"
    )
    print(
        "Reading: random mixing is the worst case the core model's "
        "bluetooth_rate channel assumes; real spatial movement lowers the "
        "fraction of transfer attempts that find a partner and slows the "
        "outbreak accordingly.\n"
    )


def part_three_xl_channel() -> None:
    population = 2500
    seed = 37
    worm = VirusParameters(
        name="bluetooth-worm-xl",
        min_send_interval=10_000.0,  # MMS channel effectively disabled
        bluetooth_rate=2.0,
    )
    base = ScenarioConfig(
        name="bluetooth-worm-xl",
        virus=worm,
        network=NetworkParameters(population=population),
        duration=48.0,
        engine="xl",
    )
    # Radius 20 m: the dense arena keeps ~3 phones in range (encounters
    # almost never fizzle, so it tracks random mixing) while the sparse
    # arena drops to ~0.3 — most attempts find nobody and the spread slows.
    regimes = [
        ("random mixing", base),
        (
            "dense grid (1 km²)",
            base.with_mobility(
                MobilityParameters(arena_size=1000.0, bluetooth_radius=20.0)
            ),
        ),
        (
            "sparse grid (3 km²)",
            base.with_mobility(
                MobilityParameters(arena_size=3000.0, bluetooth_radius=20.0)
            ),
        ),
    ]
    rows = []
    finals = {}
    for label, config in regimes:
        result = run_scenario(config, seed=seed)
        finals[label] = result.total_infected
        rows.append([label, result.total_infected])
    print(
        format_table(
            ["partner sampling", "infected by 48 h"],
            rows,
            title=f"Part 3 — the same comparison on the xl engine "
            f"({population} phones, vectorized Bluetooth channel)",
        )
    )
    assert finals["sparse grid (3 km²)"] <= finals["random mixing"], (
        "locality should slow the outbreak on the xl engine too: "
        f"sparse grid infected {finals['sparse grid (3 km²)']} phones vs "
        f"{finals['random mixing']} under random mixing"
    )
    print(
        "Reading: the xl engine reproduces the mobility story at scale — "
        "without mobility parameters its Bluetooth channel is random "
        "mixing (the core model's assumption); with the waypoint grid, "
        "encounters that find nobody within Bluetooth radius fizzle, and "
        "the sparser the arena the slower the spread."
    )


def main() -> None:
    part_one_defense_blind_spots()
    part_two_mobility()
    part_three_xl_channel()


if __name__ == "__main__":
    main()
