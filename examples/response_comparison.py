#!/usr/bin/env python
"""Cross the paper's four viruses with all six response mechanisms.

Reproduces the paper's §5.3 "optimal response strategy" analysis as one
effectiveness matrix: for every (virus, mechanism) pair, the final
infection level as a fraction of that virus's baseline.  The paper's
conclusions should be visible in the matrix:

* gateway scan / detection / immunization work on Viruses 1, 2, 4 and
  fail on the rapid Virus 3;
* monitoring and blacklisting work on Virus 3 (anomalous volume) and are
  ineffective against the self-throttled viruses (blacklisting also fails
  against multi-recipient Virus 2);
* user education is the only universally effective mechanism.

Run:  python examples/response_comparison.py          (~2 minutes)
"""

from __future__ import annotations

import time

from repro.analysis import format_table
from repro.core import (
    BlacklistConfig,
    DetectionAlgorithmConfig,
    GatewayScanConfig,
    ImmunizationConfig,
    MonitoringConfig,
    UserEducationConfig,
    baseline_scenario,
    run_scenario,
)

MECHANISMS = [
    ("scan 6h", GatewayScanConfig(6.0)),
    ("detect 95%", DetectionAlgorithmConfig(0.95)),
    ("educate ½", UserEducationConfig(0.5)),
    ("patch 24+6h", ImmunizationConfig(24.0, 6.0)),
    ("monitor 15m", MonitoringConfig(forced_wait=0.25)),
    ("blacklist 10", BlacklistConfig(10)),
]


def containment_cell(fraction: float) -> str:
    """Render a containment fraction with the paper's verdict vocabulary."""
    if fraction < 0.25:
        verdict = "stops"
    elif fraction < 0.75:
        verdict = "slows"
    else:
        verdict = "no-op"
    return f"{fraction:.0%} ({verdict})"


def main() -> None:
    seed = 11
    start = time.time()
    rows = []
    for virus in (1, 2, 3, 4):
        scenario = baseline_scenario(virus)
        baseline = run_scenario(scenario, seed=seed).total_infected
        row = [f"virus {virus}", baseline]
        for _, config in MECHANISMS:
            result = run_scenario(scenario.with_responses(config), seed=seed)
            row.append(containment_cell(result.total_infected / baseline))
        rows.append(row)
        print(f"virus {virus} done ({time.time() - start:.0f}s elapsed)")

    print()
    print(
        format_table(
            ["virus", "baseline"] + [label for label, _ in MECHANISMS],
            rows,
            title="Final infections vs baseline, per response mechanism "
            f"(1000 phones, seed {seed})",
        )
    )
    print(
        "\nPaper §5.3: rapid viruses need volume-based responses (monitoring/"
        "blacklisting); slow viruses need discriminating gateway/patch "
        "responses; education helps everywhere."
    )


if __name__ == "__main__":
    main()
