#!/usr/bin/env python
"""Combinations of response mechanisms (the paper's proposed future work).

The paper's conclusion suggests evaluating "combinations of reaction
mechanisms, particularly when a response mechanism that only slows virus
propagation requires a secondary mechanism to completely halt virus
spread."  This example implements that study for the hardest case, the
rapid Virus 3:

* monitoring alone only slows the spread;
* the gateway scan alone is useless (too slow to activate);
* monitoring + scan: the forced waits buy enough time for the signature
  to deploy, and the combination contains the virus.

Run:  python examples/combined_defenses.py          (~1 minute)
"""

from __future__ import annotations

from repro.analysis import ascii_chart, format_table
from repro.core import (
    GatewayScanConfig,
    MonitoringConfig,
    baseline_scenario,
    run_scenario,
)


def main() -> None:
    seed = 31
    base = baseline_scenario(3).with_duration(48.0)
    monitoring = MonitoringConfig(forced_wait=0.25)
    scan = GatewayScanConfig(activation_delay=6.0)

    cases = {
        "baseline": base,
        "monitoring only": base.with_responses(monitoring),
        "scan only": base.with_responses(scan),
        "monitoring + scan": base.with_responses(monitoring, scan),
    }

    results = {label: run_scenario(sc, seed=seed) for label, sc in cases.items()}
    baseline_final = results["baseline"].total_infected

    rows = []
    for label, result in results.items():
        curve = result.curve()
        t150 = curve.time_to_reach(150.0)
        rows.append(
            [
                label,
                result.total_infected,
                f"{result.total_infected / baseline_final:.0%}",
                f"{t150:.1f}h" if t150 is not None else "never",
            ]
        )
    print(
        format_table(
            ["defense", "final infected", "vs baseline", "time to 150"],
            rows,
            title=f"Virus 3 under combined defenses (48 h horizon, seed {seed})",
        )
    )

    print()
    print(
        ascii_chart(
            {label: result.curve() for label, result in results.items()},
            title="Virus 3: slowing + stopping beats either alone",
            end_time=48.0,
        )
    )
    print(
        "\nReading: monitoring caps the early send rate (slows), which keeps "
        "the infection level low until the gateway signature activates "
        "(stops) — the layered defense the paper's conclusion calls for."
    )


if __name__ == "__main__":
    main()
