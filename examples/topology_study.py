#!/usr/bin/env python
"""How the contact-list topology shapes virus propagation.

The paper (§4.3) argues that contact lists form a power-law network and
generates them with NGCE.  This example quantifies why that choice
matters: it runs the same contact-list virus over four topology families
with identical mean contact-list size and compares degree statistics and
infection dynamics.  Virus 3 (random dialing) is shown as the control —
its spread ignores the contact graph entirely.

Run:  python examples/topology_study.py          (~1 minute)
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.analysis import format_table
from repro.core import NetworkParameters, baseline_scenario, run_scenario
from repro.des.random import StreamFactory
from repro.topology import DegreeStats, average_clustering, contact_network

TOPOLOGIES = ["powerlaw", "ba", "random", "smallworld"]
POPULATION = 500
MEAN_DEGREE = 40.0


def main() -> None:
    seed = 23
    rows = []
    for model in TOPOLOGIES:
        graph = contact_network(
            POPULATION,
            MEAN_DEGREE,
            StreamFactory(seed).stream(f"topology-{model}"),
            model=model,
            exponent=1.8,
        )
        stats = DegreeStats.of(graph)
        clustering = average_clustering(
            graph, sample=100, rng=np.random.default_rng(0)
        )

        network = NetworkParameters(
            population=POPULATION,
            mean_contact_list_size=MEAN_DEGREE,
            topology_model=model,
        )
        scenario = baseline_scenario(1, network=network)
        result = run_scenario(scenario, seed=seed, graph=graph)
        curve = result.curve()
        half = curve.time_to_reach(result.total_infected / 2)
        rows.append(
            [
                model,
                f"{stats.mean:.0f}",
                f"{stats.median:.0f}",
                stats.maximum,
                f"{clustering:.3f}",
                result.total_infected,
                f"{half:.0f}h" if half is not None else "-",
            ]
        )

    # Control: Virus 3 ignores contact lists, so topology barely matters.
    control_scenario = baseline_scenario(
        3,
        network=NetworkParameters(
            population=POPULATION, mean_contact_list_size=MEAN_DEGREE
        ),
    )
    control = run_scenario(control_scenario, seed=seed)
    control_half = control.curve().time_to_reach(control.total_infected / 2)

    print(
        format_table(
            ["topology", "deg mean", "deg median", "deg max", "clustering",
             "final infected", "t(half)"],
            rows,
            title=f"Virus 1 over different contact topologies "
            f"({POPULATION} phones, mean list {MEAN_DEGREE:.0f}, seed {seed})",
        )
    )
    print(
        f"\ncontrol — virus 3 (random dialing, topology-independent): "
        f"final {control.total_infected}, t(half) {control_half:.1f}h"
    )
    print(
        "\nReading: all topologies reach a similar plateau (the consent "
        "model caps penetration at ~40%), but heavy-tailed contact lists "
        "change *who* spreads early — hub phones accelerate the middle of "
        "the power-law curves, while the paper's random-dialing Virus 3 is "
        "immune to topology by construction."
    )


if __name__ == "__main__":
    main()
