#!/usr/bin/env python
"""Stochastic simulation vs. mean-field analytics.

The paper's plateau argument is analytic — 800 susceptible × 0.40 lifetime
acceptance = 320 infected — but its curves come from Monte Carlo
simulation.  This example closes the loop: it integrates the stratified
mean-field ODE companion model (`repro.analysis.meanfield`) for a
Virus-3-like random spreader, runs the stochastic simulation at the same
operating point, and compares plateaus, growth rates, and curves.

Run:  python examples/analytical_comparison.py          (~30 seconds)
"""

from __future__ import annotations

from repro.analysis import (
    ascii_chart,
    doubling_time,
    exponential_growth_rate,
    format_table,
)
from repro.analysis.meanfield import (
    MeanFieldParameters,
    expected_mean_field_plateau,
    integrate_mean_field,
)
from repro.core import baseline_scenario, replicate_scenario


def main() -> None:
    seed = 13
    horizon = 24.0

    # Virus 3 dials 60 numbers/hour of which one third are valid, so each
    # infected phone causes ~20 valid deliveries per hour.
    simulated = replicate_scenario(
        baseline_scenario(3), replications=3, seed=seed
    )
    sim_curve = simulated.mean_curve()

    analytic = integrate_mean_field(
        MeanFieldParameters(population=1000, susceptible=800, delivery_rate=20.0),
        horizon=horizon,
    )
    mf_curve = analytic.curve()

    rows = [
        [
            "plateau (infected)",
            f"{simulated.final_summary().mean:.1f}",
            f"{analytic.final_infected:.1f}",
            f"{expected_mean_field_plateau(MeanFieldParameters(1000, 800, 20.0)):.1f}",
        ],
        [
            "time to 160 (half)",
            f"{sim_curve.time_to_reach(160.0):.1f} h",
            f"{analytic.time_to_reach(160.0):.1f} h",
            "-",
        ],
        [
            "growth rate λ (/h)",
            f"{exponential_growth_rate(sim_curve):.2f}",
            f"{exponential_growth_rate(mf_curve):.2f}",
            "-",
        ],
        [
            "doubling time",
            f"{doubling_time(sim_curve):.2f} h",
            f"{doubling_time(mf_curve):.2f} h",
            "-",
        ],
    ]
    print(
        format_table(
            ["quantity", "simulation (3 reps)", "mean field", "closed form"],
            rows,
            title="Virus 3: stochastic simulation vs mean-field ODE",
        )
    )
    print()
    print(
        ascii_chart(
            {"simulation": sim_curve, "mean-field": mf_curve},
            title="Virus 3 infection curves",
            end_time=horizon,
        )
    )
    print(
        "\nReading: both approaches agree on the plateau (the consent "
        "model's fixed point); the mean field runs slightly ahead because "
        "it omits the user read delay and Monte Carlo stragglers."
    )


if __name__ == "__main__":
    main()
