#!/usr/bin/env python
"""Quickstart: simulate a mobile-phone virus outbreak and one response.

Reproduces the paper's core workflow in ~30 lines of API use:

1. take a paper virus scenario (Virus 1, the CommWarrior-like spreader);
2. run the baseline (no defenses) over the paper's 18-day horizon;
3. add a gateway virus scan with a 6-hour signature delay;
4. compare the two infection curves.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import baseline_scenario, run_scenario
from repro.analysis import ascii_chart
from repro.core import GatewayScanConfig


def main() -> None:
    # The paper's Virus 1 on a 1000-phone network (800 susceptible), with
    # power-law contact lists of mean size 80.
    scenario = baseline_scenario(1)
    print(f"scenario: {scenario.name}  (horizon {scenario.duration:.0f} h)")

    baseline = run_scenario(scenario, seed=42)
    print(
        f"baseline: {baseline.total_infected} phones infected "
        f"({baseline.penetration:.0%} of the susceptible population; "
        f"the paper's analytic plateau is 800 x 0.40 = 320)"
    )

    # Same outbreak with the gateway virus scan: after the virus becomes
    # detectable, the provider needs 6 hours to deploy the signature; from
    # then on every infected MMS is stopped in transit.
    defended_scenario = scenario.with_responses(
        GatewayScanConfig(activation_delay=6.0), suffix="scan6h"
    )
    defended = run_scenario(defended_scenario, seed=42)
    print(
        f"with 6h gateway scan: {defended.total_infected} phones infected "
        f"({defended.total_infected / baseline.total_infected:.0%} of baseline; "
        f"the paper reports ~5%)"
    )
    scan_stats = defended.response_stats["gateway_scan"]
    print(
        f"  signature active at t={scan_stats['activation_time']:.1f} h, "
        f"{scan_stats['blocked_messages']:.0f} infected messages blocked"
    )

    print()
    print(
        ascii_chart(
            {"baseline": baseline.curve(), "scan-6h": defended.curve()},
            title="Virus 1: baseline vs gateway scan (cf. paper Figure 2)",
            end_time=scenario.duration,
        )
    )


if __name__ == "__main__":
    main()
