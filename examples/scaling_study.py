#!/usr/bin/env python
"""Population scaling study (paper §5.3).

The paper reports that "additional experiments with a 2000-phone
population demonstrate that our results scale nicely to larger population
sizes."  This example sweeps the population from 250 to 2000 phones
(holding the susceptible fraction, mean contact-list size, and virus
behaviour fixed) and shows that the *penetration fraction* — the paper's
normalized outcome — is population-invariant, while absolute counts scale
linearly.

Run:  python examples/scaling_study.py          (~1 minute)
"""

from __future__ import annotations

import time

from repro.analysis import format_table
from repro.core import NetworkParameters, baseline_scenario, run_scenario


def main() -> None:
    seed = 37
    start = time.time()
    rows = []
    for population in (250, 500, 1000, 2000):
        network = NetworkParameters(population=population)
        scenario = baseline_scenario(1, network=network)
        result = run_scenario(scenario, seed=seed)
        curve = result.curve()
        half = curve.time_to_reach(result.total_infected / 2)
        rows.append(
            [
                population,
                network.susceptible_count,
                result.total_infected,
                f"{result.penetration:.1%}",
                f"{half:.0f}h" if half is not None else "-",
            ]
        )
        print(f"population {population} done ({time.time() - start:.0f}s)")

    print()
    print(
        format_table(
            ["population", "susceptible", "final infected", "penetration",
             "t(half)"],
            rows,
            title=f"Virus 1 baseline across population sizes (seed {seed})",
        )
    )
    print(
        "\nReading: the consent model fixes the outcome at ~40% of the "
        "susceptible population regardless of scale — the paper's 'results "
        "scale nicely' claim — while the half-plateau time drifts only "
        "mildly with network size."
    )


if __name__ == "__main__":
    main()
