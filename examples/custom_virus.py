#!/usr/bin/env python
"""Define a custom virus and evaluate the paper's defenses against it.

The paper stresses that its model "is implemented in a parameterized
fashion" so new virus behaviours can be studied without new code.  This
example builds a hypothetical "Virus 5" — a hybrid of the paper's test
cases: contact-list targeting like Virus 1, multi-recipient messages like
Virus 2, a short dormancy like Virus 4 — and asks which of the six
response mechanisms would contain it.

Run:  python examples/custom_virus.py
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.core import (
    BlacklistConfig,
    DetectionAlgorithmConfig,
    GatewayScanConfig,
    ImmunizationConfig,
    LimitPeriod,
    MonitoringConfig,
    ScenarioConfig,
    Targeting,
    UserEducationConfig,
    VirusParameters,
    run_scenario,
)
from repro.core.units import DAYS, HOURS, MINUTES


def virus5() -> VirusParameters:
    """A hypothetical hybrid virus (not from the paper)."""
    return VirusParameters(
        name="virus5-hybrid",
        targeting=Targeting.CONTACT_LIST,
        recipients_per_message=5,      # small multi-recipient batches
        min_send_interval=10 * MINUTES,
        extra_send_delay_mean=10 * MINUTES,
        message_limit=60,              # 60 recipient-copies per day
        limit_counts_recipients=True,
        limit_period=LimitPeriod.FIXED_WINDOW,
        limit_window=24 * HOURS,
        dormancy=2 * HOURS,            # brief stealth period
    )


def main() -> None:
    scenario = ScenarioConfig(
        name="virus5-baseline", virus=virus5(), duration=10 * DAYS
    )
    seed = 7

    baseline = run_scenario(scenario, seed=seed)
    print(
        f"baseline: {baseline.total_infected} infected of "
        f"{baseline.susceptible_count} susceptible "
        f"({baseline.penetration:.0%})\n"
    )

    responses = [
        ("gateway scan, 6 h delay", GatewayScanConfig(6 * HOURS)),
        ("detection algorithm, 95%", DetectionAlgorithmConfig(accuracy=0.95)),
        ("user education, half acceptance", UserEducationConfig(0.5)),
        ("immunization, 24 h dev + 6 h deploy", ImmunizationConfig(24.0, 6.0)),
        ("monitoring, 15 min forced wait", MonitoringConfig(forced_wait=0.25)),
        ("blacklist, threshold 10", BlacklistConfig(threshold=10)),
    ]

    rows = []
    for label, config in responses:
        result = run_scenario(scenario.with_responses(config), seed=seed)
        containment = result.total_infected / baseline.total_infected
        verdict = (
            "stops it" if containment < 0.25
            else "slows it" if containment < 0.75
            else "ineffective"
        )
        rows.append([label, result.total_infected, f"{containment:.0%}", verdict])

    print(
        format_table(
            ["response mechanism", "final infected", "vs baseline", "verdict"],
            rows,
            title=f"Defenses against {scenario.virus.name} (seed {seed})",
        )
    )
    print(
        "\nNote: like the paper's Virus 2, the per-message blacklist count "
        "underestimates a multi-recipient spreader, while gateway-side "
        "mechanisms act before any recipient is reached."
    )


if __name__ == "__main__":
    main()
