"""Tests for the experiment harness: specs, registry, checks, runner."""

from __future__ import annotations

import pytest

from repro.core import ScenarioConfig, VirusParameters, NetworkParameters, UserParameters
from repro.experiments import (
    CheckResult,
    ExperimentSpec,
    SeriesSpec,
    experiment_ids,
    export_csv,
    format_experiment_report,
    get_experiment,
    run_experiment,
)
from repro.experiments import checks
from repro.experiments.figures import PAPER_PLATEAU


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        ids = experiment_ids()
        for fig in ("fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7"):
            assert fig in ids
        assert "blacklist-slow" in ids
        assert "scaling2000" in ids

    def test_specs_build_and_match_paper_series_counts(self):
        expected_series = {
            "fig1": 4,   # four baselines
            "fig2": 4,   # baseline + 3 scan delays
            "fig3": 6,   # baseline + 5 accuracies
            "fig4": 8,   # 4 viruses × (baseline, educated)
            "fig5": 7,   # baseline + 2 dev × 3 deploy
            "fig6": 4,   # baseline + 3 waits
            "fig7": 5,   # baseline + 4 thresholds
        }
        for experiment_id, count in expected_series.items():
            spec = get_experiment(experiment_id)
            assert len(spec.series) == count
            assert spec.shape_checks  # every figure has encoded claims

    def test_unknown_id_raises(self):
        with pytest.raises(KeyError):
            get_experiment("fig99")

    def test_paper_plateau_constant(self):
        assert PAPER_PLATEAU == 320.0

    def test_fig5_labels_match_paper_legend_style(self):
        labels = [s.label for s in get_experiment("fig5").series]
        assert "hours-24-25" in labels
        assert "hours-24-48" in labels
        assert "hours-48-72" in labels


class TestSpecValidation:
    def make_series(self, label="s"):
        scenario = ScenarioConfig(
            name=label, virus=VirusParameters(name="v"), duration=1.0
        )
        return SeriesSpec(label, scenario)

    def test_duplicate_labels_rejected(self):
        with pytest.raises(ValueError):
            ExperimentSpec(
                experiment_id="x",
                title="t",
                paper_ref="r",
                description="d",
                series=(self.make_series("a"), self.make_series("a")),
            )

    def test_empty_series_rejected(self):
        with pytest.raises(ValueError):
            ExperimentSpec(
                experiment_id="x", title="t", paper_ref="r",
                description="d", series=(),
            )

    def test_horizon_is_longest_series(self):
        short = self.make_series("short")
        long_scenario = ScenarioConfig(
            name="long", virus=VirusParameters(name="v"), duration=9.0
        )
        spec = ExperimentSpec(
            experiment_id="x", title="t", paper_ref="r", description="d",
            series=(short, SeriesSpec("long", long_scenario)),
        )
        assert spec.horizon == 9.0

    def test_empty_label_rejected(self):
        with pytest.raises(ValueError):
            self.make_series("")


def tiny_experiment() -> ExperimentSpec:
    """A fast two-series experiment over a 100-phone network."""
    network = NetworkParameters(population=100, mean_contact_list_size=12.0)
    virus = VirusParameters(
        name="tiny", min_send_interval=0.05, extra_send_delay_mean=0.05
    )
    fast = ScenarioConfig(
        name="fast", virus=virus, network=network,
        user=UserParameters(read_delay_mean=0.1), duration=24.0,
    )
    from repro.core import UserEducationConfig

    educated = fast.with_responses(
        UserEducationConfig(acceptance_scale=0.5), suffix="edu"
    )
    return ExperimentSpec(
        experiment_id="tiny",
        title="Tiny",
        paper_ref="(test)",
        description="test experiment",
        series=(SeriesSpec("baseline", fast), SeriesSpec("educated", educated)),
        checkpoints=(12.0,),
        shape_checks=(
            checks.final_ordering(["educated", "baseline"]),
            checks.containment_below("educated", "baseline", 0.9),
        ),
    )


class TestRunner:
    def test_run_and_report(self, tmp_path):
        result = run_experiment(tiny_experiment(), replications=2, seed=1)
        assert result.replications == 2
        assert set(result.series_results) == {"baseline", "educated"}
        report = format_experiment_report(result)
        assert "Tiny" in report
        assert "shape checks:" in report
        assert "t=12h" in report
        curves = result.mean_curves()
        assert curves["baseline"].final_value >= curves["educated"].final_value

    def test_checks_run(self):
        result = run_experiment(tiny_experiment(), replications=2, seed=1)
        outcomes = result.run_checks()
        assert len(outcomes) == 2
        assert all(isinstance(c, CheckResult) for c in outcomes)

    def test_csv_export(self, tmp_path):
        result = run_experiment(tiny_experiment(), replications=1, seed=1)
        path = export_csv(result, tmp_path / "out" / "tiny.csv", grid_points=10)
        content = path.read_text().splitlines()
        assert content[0] == "hours,baseline,educated"
        assert len(content) == 11

    def test_reproducible(self):
        a = run_experiment(tiny_experiment(), replications=1, seed=5)
        b = run_experiment(tiny_experiment(), replications=1, seed=5)
        assert (
            a.series_results["baseline"].final_infected()
            == b.series_results["baseline"].final_infected()
        )


class TestCheckBuilders:
    def run_tiny(self):
        return run_experiment(tiny_experiment(), replications=2, seed=1).series_results

    def test_plateau_near(self):
        results = self.run_tiny()
        final = results["baseline"].final_summary().mean
        good = checks.plateau_near("baseline", final, rel_tolerance=0.01)
        bad = checks.plateau_near("baseline", final * 10)
        assert good(results).passed
        assert not bad(results).passed

    def test_ineffective_check(self):
        results = self.run_tiny()
        check = checks.ineffective("baseline", "baseline")
        assert check(results).passed

    def test_slower_to_level(self):
        results = self.run_tiny()
        level = results["educated"].final_summary().mean * 0.8
        check = checks.slower_to_level("educated", "baseline", level, min_delay=0.0)
        outcome = check(results)
        assert outcome.passed
        assert "baseline" in outcome.detail

    def test_formatting(self):
        passed = CheckResult("name", True, "detail")
        failed = CheckResult("name", False, "detail")
        assert passed.format().startswith("[PASS]")
        assert failed.format().startswith("[FAIL]")
