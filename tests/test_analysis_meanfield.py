"""Tests for the mean-field analytical model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.meanfield import (
    MeanFieldParameters,
    expected_mean_field_plateau,
    integrate_mean_field,
)


def paper_scale(delivery_rate=20.0) -> MeanFieldParameters:
    """Virus-3-like deliveries: 60 dials/h × 1/3 valid = 20 deliveries/h."""
    return MeanFieldParameters(
        population=1000, susceptible=800, delivery_rate=delivery_rate
    )


class TestIntegration:
    def test_plateau_matches_paper_analytic(self):
        result = integrate_mean_field(paper_scale(), horizon=48.0, dt=0.01)
        # 1 + 799 × 0.40 ≈ 320.6
        assert result.final_infected == pytest.approx(
            expected_mean_field_plateau(paper_scale()), rel=0.02
        )
        assert result.final_infected == pytest.approx(320.0, abs=8.0)

    def test_monotone_and_bounded(self):
        result = integrate_mean_field(paper_scale(), horizon=24.0)
        assert np.all(np.diff(result.infected) >= -1e-9)
        assert np.all(result.infected <= 801.0)
        assert np.all(result.susceptible_remaining >= -1e-9)

    def test_conservation(self):
        """Infected + remaining-susceptible + rejected never exceeds pool."""
        result = integrate_mean_field(paper_scale(), horizon=48.0)
        total = result.infected + result.susceptible_remaining
        assert np.all(total <= 801.0 + 1e-6)

    def test_faster_delivery_faster_growth(self):
        slow = integrate_mean_field(paper_scale(5.0), horizon=48.0)
        fast = integrate_mean_field(paper_scale(40.0), horizon=48.0)
        assert fast.time_to_reach(160.0) < slow.time_to_reach(160.0)

    def test_s_shape(self):
        from repro.analysis import is_s_shaped

        result = integrate_mean_field(paper_scale(), horizon=48.0)
        assert is_s_shaped(result.curve())

    def test_time_to_reach(self):
        result = integrate_mean_field(paper_scale(), horizon=48.0)
        t_half = result.time_to_reach(160.0)
        assert t_half is not None and 0 < t_half < 24.0
        assert result.time_to_reach(10_000.0) is None

    def test_stable_for_coarse_dt(self):
        fine = integrate_mean_field(paper_scale(), horizon=24.0, dt=0.005)
        coarse = integrate_mean_field(paper_scale(), horizon=24.0, dt=0.2)
        assert coarse.final_infected == pytest.approx(
            fine.final_infected, rel=0.05
        )

    def test_education_scaling(self):
        """Halving the acceptance factor ≈ halves the mean-field plateau."""
        educated = MeanFieldParameters(
            population=1000, susceptible=800, delivery_rate=20.0,
            acceptance_factor=0.234,
        )
        result = integrate_mean_field(educated, horizon=96.0)
        assert result.final_infected == pytest.approx(170.0, abs=15.0)


class TestAgreementWithSimulation:
    def test_virus3_like_scenario(self):
        """Mean field tracks the simulated Virus 3 plateau and timescale."""
        from repro.core import NetworkParameters, baseline_scenario
        from repro.core.simulation import run_scenario

        network = NetworkParameters(population=300, mean_contact_list_size=24.0)
        simulated = run_scenario(
            baseline_scenario(3, network=network), seed=3
        )
        # Virus 3: ~60 dials/h x 1/3 valid = 20 valid deliveries/h.
        analytic = integrate_mean_field(
            MeanFieldParameters(
                population=300,
                susceptible=network.susceptible_count,
                delivery_rate=20.0,
            ),
            horizon=24.0,
        )
        assert analytic.final_infected == pytest.approx(
            simulated.total_infected, rel=0.25
        )
        # Mean field omits the read delay, so it runs earlier — but within
        # a few hours at this scale.
        sim_half = simulated.curve().time_to_reach(simulated.total_infected / 2)
        mf_half = analytic.time_to_reach(analytic.final_infected / 2)
        assert mf_half < sim_half < mf_half + 6.0


class TestValidation:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            MeanFieldParameters(population=1, susceptible=1, delivery_rate=1.0)
        with pytest.raises(ValueError):
            MeanFieldParameters(population=10, susceptible=11, delivery_rate=1.0)
        with pytest.raises(ValueError):
            MeanFieldParameters(population=10, susceptible=5, delivery_rate=0.0)
        with pytest.raises(ValueError):
            MeanFieldParameters(
                population=10, susceptible=5, delivery_rate=1.0,
                acceptance_factor=2.0,
            )
        with pytest.raises(ValueError):
            MeanFieldParameters(
                population=10, susceptible=5, delivery_rate=1.0,
                initial_infected=0,
            )

    def test_integration_validation(self):
        with pytest.raises(ValueError):
            integrate_mean_field(paper_scale(), horizon=0.0)
        with pytest.raises(ValueError):
            integrate_mean_field(paper_scale(), horizon=1.0, dt=0.0)
