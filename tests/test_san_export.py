"""Tests for SAN DOT export and the assortativity metric."""

from __future__ import annotations

import numpy as np
import pytest

from repro.des.random import Deterministic
from repro.san import (
    Case,
    InputGate,
    InstantaneousActivity,
    OutputGate,
    SANModel,
    TimedActivity,
    to_dot,
)
from repro.topology import ContactGraph, complete_graph, degree_assortativity
from repro.topology.generators import powerlaw_configuration_model


def gated_model() -> SANModel:
    model = SANModel("demo")
    model.place("fuel", 2)
    model.place("done", 0)
    model.place("flag", 1)
    model.add_activity(
        TimedActivity(
            "work",
            Deterministic(1.0),
            input_arcs=[("fuel", 2)],
            input_gates=[InputGate("armed", ("flag",), predicate=lambda m: m["flag"] > 0)],
            output_gates=[OutputGate("bump", ("done",), function=lambda m: m.add("done"))],
        )
    )
    model.add_activity(
        InstantaneousActivity(
            "branch",
            input_arcs=["done"],
            cases=[
                Case(0.3, output_arcs=["fuel"]),
                Case(0.7, output_arcs=[("flag", 1)]),
            ],
        )
    )
    return model


class TestDotExport:
    def test_structure_present(self):
        dot = to_dot(gated_model())
        assert dot.startswith('digraph "san"')
        assert '"p:fuel"' in dot
        assert "(2)" in dot  # initial marking annotation
        assert '"a:work"' in dot
        assert '"a:branch"' in dot
        assert '"ig:work:armed"' in dot
        assert '"og:work:bump"' in dot
        assert 'label="2"' in dot  # arc multiplicity
        assert "0.3" in dot and "0.7" in dot  # case probabilities

    def test_marking_dependent_case_labelled(self):
        model = SANModel("m")
        model.place("a", 1)
        model.add_activity(
            InstantaneousActivity(
                "act",
                input_arcs=["a"],
                cases=[
                    Case(lambda m: 1.0),
                    Case(lambda m: 0.0),
                ],
            )
        )
        dot = to_dot(model)
        assert "p(m)" in dot

    def test_deterministic_output(self):
        assert to_dot(gated_model()) == to_dot(gated_model())

    def test_quoting(self):
        model = SANModel("q")
        model.place('weird"name', 0)
        model.add_activity(
            TimedActivity("act", Deterministic(1.0), input_arcs=['weird"name'])
        )
        dot = to_dot(model, graph_name='g"raph')
        assert '\\"' in dot


class TestAssortativity:
    def test_regular_graph_degenerate(self):
        assert degree_assortativity(complete_graph(6)) == 0.0

    def test_empty_graph(self):
        assert degree_assortativity(ContactGraph(5)) == 0.0

    def test_star_is_disassortative(self):
        star = ContactGraph.from_edges(6, [(0, i) for i in range(1, 6)])
        assert degree_assortativity(star) == pytest.approx(-1.0)

    def test_assortative_construction(self):
        # Two cliques of different sizes joined by one edge: high-degree
        # nodes mostly link to high-degree nodes.
        graph = ContactGraph(9)
        for u in range(5):
            for v in range(u + 1, 5):
                graph.add_edge(u, v)
        for u in range(5, 9):
            for v in range(u + 1, 9):
                graph.add_edge(u, v)
        graph.add_edge(0, 5)
        assert degree_assortativity(graph) > 0.0

    def test_configuration_model_near_neutral(self):
        graph = powerlaw_configuration_model(
            600, 12.0, 1.8, np.random.default_rng(0)
        )
        r = degree_assortativity(graph)
        assert -0.35 < r < 0.15
