"""CLI resilience flags: --retries/--task-timeout/--resume, partial-failure
exit codes, and interrupt handling."""

from __future__ import annotations

import pytest

import repro.cli as cli
from repro.cli import build_parser, main
from repro.faults import FaultPlan, FaultSpec
from repro.resilience import RetryPolicy

BASE = [
    "run", "--virus", "3", "--population", "120", "--duration", "4",
    "--replications", "3", "--no-chart",
]


class TestParser:
    def test_resilience_flags_present(self):
        args = build_parser().parse_args(
            BASE + ["--retries", "2", "--task-timeout", "5.5", "--resume"]
        )
        assert args.retries == 2
        assert args.task_timeout == 5.5
        assert args.resume is True

    def test_defaults_are_fail_fast(self):
        args = build_parser().parse_args(BASE)
        assert args.retries == 0
        assert args.task_timeout is None
        assert args.resume is False


class TestMakeScheduler:
    def test_no_flags_means_no_policy(self, tmp_path):
        args = build_parser().parse_args(
            BASE + ["--cache-dir", str(tmp_path / "c")]
        )
        with cli._make_scheduler(args, label="t") as scheduler:
            assert scheduler.resilience is None
            assert scheduler.checkpoint is not None  # cache on -> checkpoint

    def test_retries_build_policy(self, tmp_path):
        args = build_parser().parse_args(
            BASE
            + ["--retries", "2", "--task-timeout", "7.0",
               "--cache-dir", str(tmp_path / "c")]
        )
        with cli._make_scheduler(args, label="t") as scheduler:
            assert scheduler.resilience == RetryPolicy(
                max_retries=2, task_timeout=7.0
            )

    def test_no_cache_disables_checkpoint(self):
        args = build_parser().parse_args(BASE + ["--no-cache"])
        with cli._make_scheduler(args, label="t") as scheduler:
            assert scheduler.checkpoint is None

    def test_resume_without_cache_is_usage_error(self, capsys):
        args = build_parser().parse_args(BASE + ["--no-cache", "--resume"])
        with pytest.raises(SystemExit) as excinfo:
            cli._make_scheduler(args, label="t")
        assert excinfo.value.code == 2
        assert "--resume requires" in capsys.readouterr().err


class TestPartialFailureExit:
    def _inject_poison(self, monkeypatch):
        """Make replication 0 of every campaign fail on all attempts."""
        real = cli._make_scheduler

        def poisoned(args, label=""):
            scheduler = real(args, label)
            scheduler.resilience = RetryPolicy(
                max_retries=1, backoff_base=0.0, backoff_cap=0.0
            )
            scheduler.fault_plan = FaultPlan(
                {0: FaultSpec(raise_attempts=tuple(range(10)))}
            )
            return scheduler

        monkeypatch.setattr(cli, "_make_scheduler", poisoned)

    def test_run_exits_3_with_stderr_summary(self, monkeypatch, capsys):
        self._inject_poison(monkeypatch)
        code = main(BASE + ["--no-cache"])
        assert code == 3
        captured = capsys.readouterr()
        assert "partial failure" in captured.err
        assert "virus3-baseline: 1 replication(s) failed after 2 attempt(s)" in (
            captured.err
        )
        # The surviving replications are still reported on stdout.
        assert "final infected" in captured.out

    def test_success_still_exits_0(self, capsys):
        assert main(BASE + ["--no-cache", "--retries", "1"]) == 0
        assert capsys.readouterr().err == ""


class TestInterruptExit:
    def test_keyboard_interrupt_returns_130(self, monkeypatch, capsys, tmp_path):
        from repro.experiments import ReplicationScheduler

        def boom(self, jobs):
            raise KeyboardInterrupt

        monkeypatch.setattr(ReplicationScheduler, "run_jobs", boom)
        code = main(BASE + ["--cache-dir", str(tmp_path / "c")])
        assert code == 130
        err = capsys.readouterr().err
        assert "interrupted" in err
        assert "--resume" in err


class TestResumeFlow:
    def test_resume_reports_reconciliation(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        assert main(BASE + ["--cache-dir", cache_dir]) == 0
        capsys.readouterr()
        assert main(BASE + ["--cache-dir", cache_dir, "--resume"]) == 0
        out = capsys.readouterr().out
        assert "resume: 3 previously completed (3 served from cache" in out
        assert "0 simulated, 3 from cache" in out
