"""Tests for the virus behaviour engine: targeting, pacing, budgets."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    LimitPeriod,
    Phone,
    Targeting,
    VirusEngine,
    VirusParameters,
    virus1,
    virus2,
    virus3,
    virus4,
)


def make_phone(contacts=(1, 2, 3, 4, 5)) -> Phone:
    phone = Phone(phone_id=0, susceptible=True, contacts=tuple(contacts))
    phone.infect(0.0)
    return phone


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestContactTargeting:
    def test_single_recipient_round_robin(self, rng):
        engine = VirusEngine(VirusParameters(name="v"), population=10)
        phone = make_phone()
        picks = [engine.select_targets(phone, rng)[0][0] for _ in range(7)]
        assert picks == [1, 2, 3, 4, 5, 1, 2]  # cycles through the list

    def test_multi_recipient_covers_list(self, rng):
        params = VirusParameters(name="v", recipients_per_message=100)
        engine = VirusEngine(params, population=10)
        phone = make_phone()
        recipients, invalid = engine.select_targets(phone, rng)
        assert recipients == (1, 2, 3, 4, 5)
        assert invalid == 0

    def test_multi_recipient_partial_window(self, rng):
        params = VirusParameters(name="v", recipients_per_message=3)
        engine = VirusEngine(params, population=10)
        phone = make_phone()
        first, _ = engine.select_targets(phone, rng)
        second, _ = engine.select_targets(phone, rng)
        assert first == (1, 2, 3)
        assert second == (4, 5, 1)  # wraps round-robin

    def test_empty_contact_list(self, rng):
        engine = VirusEngine(VirusParameters(name="v"), population=10)
        phone = Phone(phone_id=0, susceptible=True, contacts=())
        phone.infect(0.0)
        assert engine.select_targets(phone, rng) == ((), 0)

    def test_recipient_budget_caps_selection(self, rng):
        params = VirusParameters(
            name="v",
            recipients_per_message=100,
            message_limit=3,
            limit_counts_recipients=True,
            limit_period=LimitPeriod.FIXED_WINDOW,
        )
        engine = VirusEngine(params, population=10)
        phone = make_phone()
        recipients, _ = engine.select_targets(phone, rng)
        assert len(recipients) == 3
        phone.record_send(0.0, engine.budget_units(len(recipients)))
        assert engine.budget_exhausted(phone)
        assert engine.select_targets(phone, rng) == ((), 0)


class TestRandomDialing:
    def test_valid_fraction(self, rng):
        params = VirusParameters(
            name="v",
            targeting=Targeting.RANDOM_DIALING,
            valid_number_fraction=1.0 / 3.0,
        )
        engine = VirusEngine(params, population=100)
        phone = make_phone()
        valid = invalid = 0
        for _ in range(6000):
            recipients, bad = engine.select_targets(phone, rng)
            valid += len(recipients)
            invalid += bad
        fraction = valid / (valid + invalid)
        assert fraction == pytest.approx(1.0 / 3.0, abs=0.02)

    def test_never_dials_self(self, rng):
        params = VirusParameters(
            name="v", targeting=Targeting.RANDOM_DIALING, valid_number_fraction=1.0
        )
        engine = VirusEngine(params, population=5)
        phone = make_phone()
        for _ in range(500):
            recipients, _ = engine.select_targets(phone, rng)
            assert phone.phone_id not in recipients

    def test_targets_cover_population(self, rng):
        params = VirusParameters(
            name="v", targeting=Targeting.RANDOM_DIALING, valid_number_fraction=1.0
        )
        engine = VirusEngine(params, population=20)
        phone = make_phone()
        seen = set()
        for _ in range(2000):
            recipients, _ = engine.select_targets(phone, rng)
            seen.update(recipients)
        assert seen == set(range(1, 20))


class TestBudgets:
    def test_no_limit_never_exhausts(self, rng):
        engine = VirusEngine(VirusParameters(name="v"), population=10)
        phone = make_phone()
        phone.sent_in_period = 10**6
        assert not engine.budget_exhausted(phone)
        assert engine.next_budget_reset(phone) is None

    def test_window_budget_reset_time(self, rng):
        params = VirusParameters(
            name="v",
            message_limit=2,
            limit_period=LimitPeriod.FIXED_WINDOW,
            limit_window=24.0,
        )
        engine = VirusEngine(params, population=10)
        phone = make_phone()
        phone.record_send(1.0)
        phone.record_send(2.0)
        assert engine.budget_exhausted(phone)
        assert engine.next_budget_reset(phone) == 24.0
        engine.advance_window(phone, 30.0)
        assert phone.sent_in_period == 0
        assert phone.period_start == 24.0

    def test_global_windows_not_advanced_locally(self, rng):
        params = VirusParameters(
            name="v",
            message_limit=2,
            limit_period=LimitPeriod.FIXED_WINDOW,
            limit_window=24.0,
            global_limit_windows=True,
        )
        engine = VirusEngine(params, population=10)
        assert engine.uses_global_windows
        phone = make_phone()
        phone.record_send(1.0)
        phone.record_send(2.0)
        engine.advance_window(phone, 30.0)  # no-op for global windows
        assert phone.sent_in_period == 2
        assert engine.next_budget_reset(phone) is None

    def test_reboot_budget(self, rng):
        params = VirusParameters(
            name="v", message_limit=30, limit_period=LimitPeriod.REBOOT
        )
        engine = VirusEngine(params, population=10)
        assert engine.uses_reboot_limit
        phone = make_phone()
        phone.sent_in_period = 30
        assert engine.budget_exhausted(phone)
        assert engine.next_budget_reset(phone) is None
        phone.reboot(10.0)
        assert not engine.budget_exhausted(phone)


class TestPacing:
    def test_intervals_respect_minimum(self, rng):
        params = VirusParameters(
            name="v", min_send_interval=0.5, extra_send_delay_mean=0.5
        )
        engine = VirusEngine(params, population=10)
        samples = [engine.sample_send_interval(rng) for _ in range(2000)]
        assert min(samples) >= 0.5
        assert np.mean(samples) == pytest.approx(1.0, abs=0.05)

    def test_initial_delay_includes_dormancy(self, rng):
        params = VirusParameters(
            name="v", dormancy=1.0, min_send_interval=0.5, extra_send_delay_mean=0.0
        )
        engine = VirusEngine(params, population=10)
        assert engine.initial_send_delay(rng) == pytest.approx(1.5)

    def test_reboot_interval_mean(self, rng):
        params = VirusParameters(name="v", reboot_interval_mean=24.0)
        engine = VirusEngine(params, population=10)
        samples = [engine.sample_reboot_interval(rng) for _ in range(3000)]
        assert np.mean(samples) == pytest.approx(24.0, rel=0.05)


class TestPaperViruses:
    def test_virus1_matches_paper(self):
        params = virus1()
        assert params.targeting is Targeting.CONTACT_LIST
        assert params.recipients_per_message == 1
        assert params.min_send_interval == pytest.approx(0.5)
        assert params.message_limit == 30
        assert params.limit_period is LimitPeriod.REBOOT
        assert params.reboot_interval_mean == pytest.approx(24.0)

    def test_virus2_matches_paper(self):
        params = virus2()
        assert params.recipients_per_message == 100
        assert params.min_send_interval == pytest.approx(1.0 / 60.0)
        assert params.message_limit == 30
        assert params.limit_period is LimitPeriod.FIXED_WINDOW
        assert params.limit_window == pytest.approx(24.0)
        assert params.global_limit_windows
        assert params.limit_counts_recipients

    def test_virus3_matches_paper(self):
        params = virus3()
        assert params.targeting is Targeting.RANDOM_DIALING
        assert params.valid_number_fraction == pytest.approx(1.0 / 3.0)
        assert params.min_send_interval == pytest.approx(1.0 / 60.0)
        assert params.message_limit is None

    def test_virus4_matches_paper(self):
        params = virus4()
        assert params.dormancy == pytest.approx(1.0)
        assert params.min_send_interval == pytest.approx(0.5)
        assert params.message_limit is None

    def test_population_validation(self):
        with pytest.raises(ValueError):
            VirusEngine(virus1(), population=1)
