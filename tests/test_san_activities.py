"""Tests for SAN activities: enabling, firing, cases, validation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.san import (
    Arc,
    Case,
    InputGate,
    InstantaneousActivity,
    Marking,
    OutputGate,
    TimedActivity,
)
from repro.des.random import Deterministic, Exponential


def make_marking(**tokens):
    return Marking(dict(tokens))


class TestEnabling:
    def test_input_arc_requires_tokens(self):
        activity = TimedActivity("t", 1.0, input_arcs=["a"], output_arcs=["b"])
        assert not activity.enabled(make_marking(a=0, b=0))
        assert activity.enabled(make_marking(a=1, b=0))

    def test_multiplicity(self):
        activity = TimedActivity("t", 1.0, input_arcs=[("a", 3)])
        assert not activity.enabled(make_marking(a=2))
        assert activity.enabled(make_marking(a=3))

    def test_input_gate_predicate(self):
        gate = InputGate("g", ("a",), predicate=lambda m: m["a"] >= 5)
        activity = TimedActivity("t", 1.0, input_gates=[gate])
        assert not activity.enabled(make_marking(a=4))
        assert activity.enabled(make_marking(a=5))

    def test_arc_and_gate_both_required(self):
        gate = InputGate("g", ("b",), predicate=lambda m: m["b"] == 0)
        activity = TimedActivity("t", 1.0, input_arcs=["a"], input_gates=[gate])
        assert not activity.enabled(make_marking(a=1, b=1))
        assert not activity.enabled(make_marking(a=0, b=0))
        assert activity.enabled(make_marking(a=1, b=0))


class TestFiring:
    def test_arcs_move_tokens(self):
        activity = TimedActivity("t", 1.0, input_arcs=[("a", 2)], output_arcs=["b"])
        marking = make_marking(a=3, b=0)
        activity.fire(marking, np.random.default_rng(0))
        assert marking["a"] == 1
        assert marking["b"] == 1

    def test_gate_functions_applied_in_order(self):
        order = []
        input_gate = InputGate(
            "ig", ("a",), function=lambda m: order.append("input")
        )
        output_gate = OutputGate(
            "og", ("a",), function=lambda m: order.append("output")
        )
        activity = TimedActivity(
            "t", 1.0, input_gates=[input_gate], output_gates=[output_gate]
        )
        activity.fire(make_marking(a=0), np.random.default_rng(0))
        assert order == ["input", "output"]

    def test_case_selection_respects_probabilities(self):
        activity = TimedActivity(
            "t",
            1.0,
            input_arcs=["a"],
            cases=[
                Case(0.25, output_arcs=["left"]),
                Case(0.75, output_arcs=["right"]),
            ],
        )
        rng = np.random.default_rng(1)
        lefts = 0
        trials = 4000
        for _ in range(trials):
            marking = make_marking(a=1, left=0, right=0)
            activity.fire(marking, rng)
            lefts += marking["left"]
        assert abs(lefts / trials - 0.25) < 0.03

    def test_fire_returns_case_index(self):
        activity = TimedActivity(
            "t", 1.0, cases=[Case(1.0, output_arcs=["a"]), Case(0.0)]
        )
        index = activity.fire(make_marking(a=0), np.random.default_rng(0))
        assert index == 0

    def test_marking_dependent_case_probability(self):
        activity = InstantaneousActivity(
            "read",
            input_arcs=["inbox"],
            cases=[
                Case(
                    probability=lambda m: 1.0 if m["received"] == 0 else 0.0,
                    output_arcs=["accepted", "received"],
                ),
                Case(
                    probability=lambda m: 0.0 if m["received"] == 0 else 1.0,
                    output_arcs=["received"],
                ),
            ],
        )
        rng = np.random.default_rng(0)
        marking = make_marking(inbox=2, received=0, accepted=0)
        activity.fire(marking, rng)
        assert marking["accepted"] == 1  # first read always accepts here
        activity.fire(marking, rng)
        assert marking["accepted"] == 1  # second read never accepts
        assert marking["received"] == 2

    def test_zero_total_case_probability_raises(self):
        activity = InstantaneousActivity(
            "bad", cases=[Case(probability=lambda m: 0.0)]
        )
        with pytest.raises(ValueError):
            activity.fire(make_marking(), np.random.default_rng(0))


class TestValidation:
    def test_case_probabilities_must_sum_to_one(self):
        with pytest.raises(ValueError):
            TimedActivity("t", 1.0, cases=[Case(0.5), Case(0.4)])

    def test_cases_and_direct_outputs_exclusive(self):
        with pytest.raises(ValueError):
            TimedActivity("t", 1.0, output_arcs=["a"], cases=[Case(1.0)])

    def test_arc_multiplicity_positive(self):
        with pytest.raises(ValueError):
            Arc("a", 0)

    def test_case_probability_bounds(self):
        with pytest.raises(ValueError):
            Case(1.5)

    def test_bad_arc_spec(self):
        with pytest.raises(TypeError):
            TimedActivity("t", 1.0, input_arcs=[42])

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            TimedActivity("", 1.0)

    def test_negative_sampled_delay_rejected(self):
        class NegativeDist(Deterministic):
            def sample(self, rng):
                return -1.0

        activity = TimedActivity("t", NegativeDist(1.0))
        with pytest.raises(ValueError):
            activity.sample_delay(make_marking(), np.random.default_rng(0))


class TestDelays:
    def test_fixed_distribution(self):
        activity = TimedActivity("t", Exponential(2.0))
        rng = np.random.default_rng(0)
        samples = [activity.sample_delay(make_marking(), rng) for _ in range(2000)]
        assert abs(np.mean(samples) - 2.0) < 0.15

    def test_marking_dependent_delay(self):
        activity = TimedActivity(
            "t",
            lambda m: Deterministic(float(m["load"])),
            input_gates=[InputGate("g", ("load",))],
        )
        rng = np.random.default_rng(0)
        assert activity.sample_delay(make_marking(load=7), rng) == 7.0

    def test_numeric_delay_coerced(self):
        activity = TimedActivity("t", 2.5)
        assert activity.sample_delay(make_marking(), np.random.default_rng(0)) == 2.5


class TestStructureQueries:
    def test_read_and_touched_places(self):
        gate_in = InputGate("gi", ("p", "q"))
        gate_out = OutputGate("go", ("r",))
        activity = TimedActivity(
            "t",
            1.0,
            input_arcs=["a"],
            output_arcs=["b"],
            input_gates=[gate_in],
            output_gates=[gate_out],
        )
        assert set(activity.read_places()) == {"a", "p", "q"}
        assert set(activity.touched_places()) == {"a", "p", "q", "b", "r"}

    def test_case_places_in_touched(self):
        activity = TimedActivity(
            "t", 1.0, input_arcs=["a"], cases=[Case(1.0, output_arcs=["x"])]
        )
        assert "x" in activity.touched_places()
        assert "x" not in activity.read_places()
