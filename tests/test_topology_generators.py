"""Tests for the random-graph generators (NGCE substitute)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.topology import (
    attach_isolated_nodes,
    barabasi_albert,
    chung_lu_powerlaw,
    complete_graph,
    contact_network,
    erdos_renyi,
    ring_lattice,
    watts_strogatz,
)
from repro.topology.generators import (
    powerlaw_configuration_model,
    solve_powerlaw_k_min,
)
from repro.topology.metrics import DegreeStats, largest_component_fraction


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


def test_complete_graph():
    graph = complete_graph(6)
    assert graph.num_edges == 15
    assert all(graph.degree(i) == 5 for i in range(6))


def test_ring_lattice_regular():
    graph = ring_lattice(10, 4)
    assert all(graph.degree(i) == 4 for i in range(10))
    assert graph.has_edge(0, 1)
    assert graph.has_edge(0, 2)
    assert not graph.has_edge(0, 3)


def test_ring_lattice_validation():
    with pytest.raises(ValueError):
        ring_lattice(10, 3)  # odd k
    with pytest.raises(ValueError):
        ring_lattice(4, 4)  # k >= n


def test_erdos_renyi_mean_degree(rng):
    graph = erdos_renyi(500, 12.0, rng)
    assert abs(graph.mean_degree() - 12.0) < 1.5
    assert graph.is_reciprocal()


def test_erdos_renyi_infeasible_density(rng):
    with pytest.raises(ValueError):
        erdos_renyi(10, 20.0, rng)


def test_watts_strogatz_preserves_edge_count(rng):
    graph = watts_strogatz(100, 6, 0.2, rng)
    assert graph.num_edges == 300
    assert abs(graph.mean_degree() - 6.0) < 1e-9


def test_watts_strogatz_zero_rewire_is_lattice(rng):
    graph = watts_strogatz(20, 4, 0.0, rng)
    lattice = ring_lattice(20, 4)
    assert sorted(graph.edges()) == sorted(lattice.edges())


def test_watts_strogatz_rewire_prob_validation(rng):
    with pytest.raises(ValueError):
        watts_strogatz(20, 4, 1.5, rng)


def test_barabasi_albert_mean_degree(rng):
    graph = barabasi_albert(400, 5, rng)
    # mean degree ≈ 2m for large n
    assert abs(graph.mean_degree() - 10.0) < 1.0
    assert largest_component_fraction(graph) == 1.0


def test_barabasi_albert_hubs_exist(rng):
    graph = barabasi_albert(500, 3, rng)
    stats = DegreeStats.of(graph)
    assert stats.maximum > 4 * stats.mean  # heavy tail


def test_barabasi_albert_validation(rng):
    with pytest.raises(ValueError):
        barabasi_albert(5, 5, rng)
    with pytest.raises(ValueError):
        barabasi_albert(10, 0, rng)


def test_chung_lu_powerlaw_mean(rng):
    graph = chung_lu_powerlaw(800, 20.0, 2.5, rng)
    assert abs(graph.mean_degree() - 20.0) < 4.0
    assert graph.is_reciprocal()


def test_chung_lu_validation(rng):
    with pytest.raises(ValueError):
        chung_lu_powerlaw(100, 10.0, 1.5, rng)  # exponent <= 2
    with pytest.raises(ValueError):
        chung_lu_powerlaw(100, 200.0, 2.5, rng)  # infeasible mean


def test_solve_powerlaw_k_min_monotone():
    k1 = solve_powerlaw_k_min(10.0, 1.8, 500)
    k2 = solve_powerlaw_k_min(50.0, 1.8, 500)
    assert k1 < k2


def test_solve_powerlaw_k_min_unreachable():
    with pytest.raises(ValueError):
        solve_powerlaw_k_min(1000.0, 1.8, 500)


def test_configuration_model_paper_settings(rng):
    """The paper's topology: 1000 phones, mean contact list ≈ 80."""
    graph = powerlaw_configuration_model(1000, 80.0, 1.8, rng)
    stats = DegreeStats.of(graph)
    assert abs(stats.mean - 80.0) < 12.0
    # Heavy tail: median well below mean, hubs well above.
    assert stats.median < 0.8 * stats.mean
    assert stats.maximum > 2.5 * stats.mean
    assert graph.is_reciprocal()


def test_configuration_model_reproducible():
    a = powerlaw_configuration_model(200, 10.0, 1.8, np.random.default_rng(7))
    b = powerlaw_configuration_model(200, 10.0, 1.8, np.random.default_rng(7))
    assert sorted(a.edges()) == sorted(b.edges())


def test_attach_isolated_nodes(rng):
    from repro.topology import ContactGraph

    graph = ContactGraph(10)
    graph.add_edge(0, 1)
    fixed = attach_isolated_nodes(graph, rng)
    assert fixed == 8
    assert graph.isolated_nodes() == []


def test_contact_network_dispatch(rng):
    for model in ("powerlaw", "chunglu", "ba", "random", "smallworld", "ring"):
        exponent = 2.5 if model == "chunglu" else 1.8
        graph = contact_network(200, 10.0, rng, model=model, exponent=exponent)
        assert graph.num_nodes == 200
        assert graph.isolated_nodes() == []
    graph = contact_network(20, 10.0, rng, model="complete")
    assert graph.num_edges == 190


def test_contact_network_unknown_model(rng):
    with pytest.raises(ValueError):
        contact_network(100, 10.0, rng, model="mystery")
