"""Unit tests for the deterministic fault-injection harness itself."""

from __future__ import annotations

import pytest

from repro.core import (
    NetworkParameters,
    ScenarioConfig,
    UserParameters,
    VirusParameters,
    run_scenario,
)
from repro.faults import (
    FaultInjectingCache,
    FaultPlan,
    FaultSpec,
    InjectedCrashError,
    InjectedHangError,
    InjectedTaskError,
    corrupt_cache_entry,
)


@pytest.fixture
def tiny_config() -> ScenarioConfig:
    return ScenarioConfig(
        name="faults-test",
        virus=VirusParameters(
            name="f-virus", min_send_interval=0.05, extra_send_delay_mean=0.05
        ),
        network=NetworkParameters(population=40, mean_contact_list_size=6.0),
        user=UserParameters(read_delay_mean=0.1),
        duration=2.0,
    )


class TestFaultSpec:
    def test_noop_on_unlisted_attempt(self):
        FaultSpec(raise_attempts=(1,)).apply(0)  # must not raise

    def test_raise_attempts(self):
        with pytest.raises(InjectedTaskError):
            FaultSpec(raise_attempts=(0,)).apply(0)

    def test_soft_crash_and_hang_raise_instead(self):
        with pytest.raises(InjectedCrashError):
            FaultSpec(crash_attempts=(0,)).apply(0, soft=True)
        with pytest.raises(InjectedHangError):
            FaultSpec(hang_attempts=(0,)).apply(0, soft=True)


class TestFaultPlan:
    def test_from_seed_is_deterministic(self):
        a = FaultPlan.from_seed(7, task_count=50, crash_fraction=0.2, hangs=2)
        b = FaultPlan.from_seed(7, task_count=50, crash_fraction=0.2, hangs=2)
        assert a.specs == b.specs
        c = FaultPlan.from_seed(8, task_count=50, crash_fraction=0.2, hangs=2)
        assert a.specs != c.specs

    def test_from_seed_victim_counts(self):
        plan = FaultPlan.from_seed(0, task_count=20, crash_fraction=0.25, hangs=1)
        crashes = sum(1 for s in plan.specs.values() if s.crash_attempts)
        hangs = sum(1 for s in plan.specs.values() if s.hang_attempts)
        assert crashes == 5
        assert hangs == 1
        assert len(plan) == 6

    def test_from_seed_soft_crash_kind(self):
        plan = FaultPlan.from_seed(
            0, task_count=10, crash_fraction=0.5, crash_kind="raise"
        )
        assert all(s.raise_attempts == (0,) for s in plan.specs.values())

    def test_from_seed_validation(self):
        with pytest.raises(ValueError):
            FaultPlan.from_seed(0, 10, crash_fraction=1.5)
        with pytest.raises(ValueError):
            FaultPlan.from_seed(0, 10, hangs=-1)
        with pytest.raises(ValueError):
            FaultPlan.from_seed(0, 10, crash_kind="segfault")

    def test_spec_for_unlisted_task_is_none(self):
        assert FaultPlan({}).spec_for(3) is None


class TestFaultInjectingCache:
    def test_selected_writes_fail(self, tiny_config, tmp_path):
        cache = FaultInjectingCache(tmp_path / "c", fail_write_ordinals=(1,))
        results = [run_scenario(tiny_config, seed=0, replication=r) for r in range(3)]
        cache.put(results[0])
        with pytest.raises(OSError, match="injected cache write"):
            cache.put(results[1])
        cache.put(results[2])
        assert cache.failed_writes == 1
        assert cache.writes == 2
        assert cache.get(tiny_config, 0, 0) is not None
        assert cache.get(tiny_config, 0, 1) is None  # the failed write
        assert cache.get(tiny_config, 0, 2) is not None


class TestCorruptCacheEntry:
    def test_flip_changes_bytes_in_place(self, tiny_config, tmp_path):
        from repro.core import ResultCache

        cache = ResultCache(tmp_path / "c")
        path = cache.put(run_scenario(tiny_config, seed=0, replication=0))
        pristine = path.read_bytes()
        assert corrupt_cache_entry(cache, tiny_config, 0, 0, flip_offset=40) == path
        assert path.read_bytes() != pristine
        # Flipping the same offset again restores the original bytes (XOR).
        corrupt_cache_entry(cache, tiny_config, 0, 0, flip_offset=40)
        assert path.read_bytes() == pristine

    def test_flip_offset_validation(self, tiny_config, tmp_path):
        from repro.core import ResultCache

        cache = ResultCache(tmp_path / "c")
        cache.put(run_scenario(tiny_config, seed=0, replication=0))
        with pytest.raises(ValueError, match="flip_offset"):
            corrupt_cache_entry(cache, tiny_config, 0, 0, flip_offset=10**9)
