"""Tests for the metrics registry and its DES-kernel integration."""

from __future__ import annotations

import json
import time

import pytest

from repro.des.simulator import Simulator
from repro.obs.metrics import NULL_METRICS, Counter, Gauge, Metrics, Timer


class TestInstruments:
    def test_counter(self):
        counter = Counter()
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_gauge_set_and_max(self):
        gauge = Gauge()
        gauge.set(3.0)
        gauge.set_max(1.0)
        assert gauge.value == 3.0
        gauge.set_max(7.5)
        assert gauge.value == 7.5
        gauge.set(2.0)
        assert gauge.value == 2.0

    def test_timer_moments(self):
        timer = Timer()
        for seconds in (0.2, 0.1, 0.4):
            timer.observe(seconds)
        assert timer.count == 3
        assert timer.total == pytest.approx(0.7)
        assert timer.min == pytest.approx(0.1)
        assert timer.max == pytest.approx(0.4)
        assert timer.mean == pytest.approx(0.7 / 3)

    def test_timer_empty_mean(self):
        assert Timer().mean == 0.0


class TestRegistry:
    def test_record_methods(self):
        metrics = Metrics()
        metrics.inc("a")
        metrics.inc("a", 2)
        metrics.set_gauge("g", 4.0)
        metrics.gauge_max("g", 9.0)
        metrics.observe("t", 0.25)
        assert metrics.counter_value("a") == 3
        assert metrics.gauge_value("g") == 9.0
        assert metrics.timer("t").count == 1

    def test_instruments_created_once(self):
        metrics = Metrics()
        assert metrics.counter("x") is metrics.counter("x")
        assert metrics.timer("y") is metrics.timer("y")
        assert metrics.gauge("z") is metrics.gauge("z")

    def test_timeit_context(self):
        metrics = Metrics()
        with metrics.timeit("block"):
            pass
        timer = metrics.timer("block")
        assert timer.count == 1
        assert timer.total >= 0.0

    def test_unknown_names_read_as_zero(self):
        metrics = Metrics()
        assert metrics.counter_value("nope") == 0
        assert metrics.gauge_value("nope") == 0.0

    def test_clear(self):
        metrics = Metrics()
        metrics.inc("a")
        metrics.observe("t", 1.0)
        metrics.clear()
        assert len(metrics) == 0


class TestDisabledPath:
    def test_disabled_records_nothing(self):
        metrics = Metrics(enabled=False)
        metrics.inc("a", 5)
        metrics.set_gauge("g", 1.0)
        metrics.gauge_max("g", 2.0)
        metrics.observe("t", 0.5)
        with metrics.timeit("block"):
            pass
        assert len(metrics) == 0
        assert metrics.snapshot() == {"counters": {}, "gauges": {}, "timers": {}}

    def test_time_events_requires_enabled(self):
        assert Metrics(enabled=False, time_events=True).time_events is False
        assert Metrics(enabled=True, time_events=True).time_events is True

    def test_null_metrics_is_disabled(self):
        assert NULL_METRICS.enabled is False
        NULL_METRICS.inc("leak")
        assert len(NULL_METRICS) == 0

    def test_disabled_overhead_is_small(self):
        """The disabled path must not cost more than the enabled path.

        Best-of-5 timings with a generous factor keep this robust on
        noisy CI machines while still catching a disabled path that
        accidentally started doing real work.
        """
        iterations = 20_000

        def best_of(metrics: Metrics) -> float:
            best = float("inf")
            for _ in range(5):
                start = time.perf_counter()
                for _ in range(iterations):
                    metrics.inc("c")
                    metrics.observe("t", 0.0)
                best = min(best, time.perf_counter() - start)
            return best

        enabled = best_of(Metrics(enabled=True))
        disabled = best_of(Metrics(enabled=False))
        assert disabled <= enabled * 1.5


class TestSnapshotMerge:
    def test_snapshot_round_trips_through_json(self):
        metrics = Metrics()
        metrics.inc("jobs", 3)
        metrics.gauge_max("peak", 11.0)
        metrics.observe("wall", 0.5)
        restored = json.loads(json.dumps(metrics.snapshot()))
        target = Metrics()
        target.merge(restored)
        assert target.counter_value("jobs") == 3
        assert target.gauge_value("peak") == 11.0
        assert target.timer("wall").count == 1

    def test_merge_aggregates(self):
        a, b = Metrics(), Metrics()
        a.inc("n", 2)
        b.inc("n", 5)
        a.gauge_max("peak", 10.0)
        b.gauge_max("peak", 4.0)
        a.observe("t", 0.1)
        a.observe("t", 0.3)
        b.observe("t", 0.2)
        a.merge(b.snapshot())
        assert a.counter_value("n") == 7
        assert a.gauge_value("peak") == 10.0  # max, not sum
        timer = a.timer("t")
        assert timer.count == 3
        assert timer.total == pytest.approx(0.6)
        assert timer.min == pytest.approx(0.1)
        assert timer.max == pytest.approx(0.3)

    def test_merge_empty_timer_snapshot_keeps_min_sane(self):
        target = Metrics()
        source = Metrics()
        source.timer("t")  # created but never observed
        target.merge(source.snapshot())
        assert target.timer("t").count == 0
        target.observe("t", 0.5)
        assert target.timer("t").min == pytest.approx(0.5)


class TestKernelIntegration:
    def test_run_reports_kernel_telemetry(self):
        metrics = Metrics(enabled=True)
        sim = Simulator(metrics=metrics)
        fired = []
        for i in range(5):
            sim.schedule(float(i), lambda i=i: fired.append(i), label="tick")
        handle = sim.schedule(2.5, lambda: fired.append(-1), label="doomed")
        handle.cancel()
        sim.run(until=10.0)
        assert fired == [0, 1, 2, 3, 4]
        assert metrics.counter_value("des.events_fired") == 5
        assert metrics.counter_value("des.events_cancelled") == 1
        assert metrics.counter_value("des.runs") == 1
        assert metrics.gauge_value("des.heap_peak") >= 5
        assert metrics.timer("des.run_seconds").count == 1

    def test_time_events_produces_per_label_timers(self):
        metrics = Metrics(enabled=True, time_events=True)
        sim = Simulator(metrics=metrics)
        sim.schedule(0.0, lambda: None, label="alpha")
        sim.schedule(1.0, lambda: None, label="alpha")
        sim.schedule(2.0, lambda: None)  # unlabeled
        sim.run()
        assert metrics.timer("event.alpha").count == 2
        assert metrics.timer("event.unlabeled").count == 1

    def test_disabled_metrics_leaves_kernel_untouched(self):
        sim = Simulator()  # NULL_METRICS by default
        sim.schedule(0.0, lambda: None, label="tick")
        sim.run()
        assert sim.metrics is NULL_METRICS
        assert len(NULL_METRICS) == 0

    def test_kernel_stats(self):
        sim = Simulator()
        sim.schedule(0.0, lambda: None)
        handle = sim.schedule(1.0, lambda: None)
        handle.cancel()
        sim.schedule(2.0, lambda: None)
        sim.run(max_events=1)
        stats = sim.kernel_stats()
        assert stats["events_fired"] == 1
        assert stats["events_cancelled"] == 1
        assert stats["heap_peak"] >= 2
        assert stats["pending_events"] == 1
