"""Tests for text tables and ASCII charts."""

from __future__ import annotations

import pytest

from repro.analysis import StepCurve, ascii_chart, format_series_summary, format_table


class TestFormatTable:
    def test_alignment_and_content(self):
        table = format_table(
            ["name", "value"], [["alpha", 1.5], ["b", 22.25]], title="demo"
        )
        lines = table.splitlines()
        assert lines[0] == "demo"
        assert "name" in lines[1] and "value" in lines[1]
        assert "alpha" in lines[3]
        assert "1.50" in lines[3]
        assert "22.25" in lines[4]

    def test_column_count_checked(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])
        with pytest.raises(ValueError):
            format_table([], [])

    def test_empty_rows_ok(self):
        table = format_table(["a"], [])
        assert "a" in table


class TestAsciiChart:
    def make_series(self):
        return {
            "baseline": StepCurve([(0.0, 0.0), (10.0, 100.0)]),
            "response": StepCurve([(0.0, 0.0), (10.0, 20.0)]),
        }

    def test_contains_legend_and_axes(self):
        chart = ascii_chart(self.make_series(), width=40, height=10, title="t")
        assert "o=baseline" in chart
        assert "*=response" in chart
        assert "100" in chart  # y max label
        assert "(hours)" in chart

    def test_series_glyphs_plotted(self):
        chart = ascii_chart(self.make_series(), width=40, height=10)
        assert "o" in chart
        assert "*" in chart

    def test_size_validation(self):
        with pytest.raises(ValueError):
            ascii_chart(self.make_series(), width=10, height=10)
        with pytest.raises(ValueError):
            ascii_chart({}, width=40, height=10)

    def test_too_many_series_rejected(self):
        series = {f"s{i}": StepCurve.constant(1.0) for i in range(9)}
        with pytest.raises(ValueError):
            ascii_chart(series, width=40, height=10)

    def test_flat_zero_series_supported(self):
        chart = ascii_chart({"flat": StepCurve.constant(0.0)}, width=40, height=10)
        assert "flat" in chart


class TestSeriesSummary:
    def test_summary_table(self):
        series = {
            "a": StepCurve([(0.0, 0.0), (5.0, 80.0)]),
            "b": StepCurve([(0.0, 0.0), (5.0, 40.0)]),
        }
        text = format_series_summary(series, susceptible=160, checkpoints=(2.0, 5.0))
        assert "50.0%" in text  # 80/160
        assert "25.0%" in text
        assert "t=2h" in text
