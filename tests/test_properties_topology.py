"""Property-based tests for topology generation (hypothesis)."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology import (
    ContactGraph,
    contact_network,
    dumps_contact_lists,
    loads_contact_lists,
)
from repro.topology.generators import powerlaw_configuration_model


@given(
    n=st.integers(10, 120),
    mean_degree=st.floats(2.0, 8.0),
    seed=st.integers(0, 10_000),
)
@settings(max_examples=30, deadline=None)
def test_generated_graphs_are_reciprocal_and_loop_free(n, mean_degree, seed):
    rng = np.random.default_rng(seed)
    graph = contact_network(n, mean_degree, rng, model="powerlaw", exponent=1.8)
    assert graph.is_reciprocal()
    for u, v in graph.edges():
        assert u != v
        assert 0 <= u < n and 0 <= v < n


@given(
    n=st.integers(10, 120),
    mean_degree=st.floats(2.0, 8.0),
    seed=st.integers(0, 10_000),
)
@settings(max_examples=30, deadline=None)
def test_degree_sum_is_twice_edge_count(n, mean_degree, seed):
    rng = np.random.default_rng(seed)
    graph = powerlaw_configuration_model(n, mean_degree, 1.8, rng)
    assert sum(graph.degrees()) == 2 * graph.num_edges


@given(
    n=st.integers(5, 60),
    seed=st.integers(0, 10_000),
    model=st.sampled_from(["powerlaw", "random", "ba"]),
)
@settings(max_examples=30, deadline=None)
def test_contact_list_file_round_trip(n, seed, model):
    rng = np.random.default_rng(seed)
    graph = contact_network(n, 4.0, rng, model=model, exponent=1.8)
    loaded = loads_contact_lists(dumps_contact_lists(graph))
    assert loaded.num_nodes == graph.num_nodes
    assert sorted(loaded.edges()) == sorted(graph.edges())


@given(
    edges=st.lists(
        st.tuples(st.integers(0, 29), st.integers(0, 29)).filter(
            lambda e: e[0] != e[1]
        ),
        max_size=200,
    )
)
@settings(max_examples=50, deadline=None)
def test_from_edges_idempotent_under_duplicates(edges):
    graph = ContactGraph.from_edges(30, edges)
    again = ContactGraph.from_edges(30, edges + edges)
    assert sorted(graph.edges()) == sorted(again.edges())
    unique = {tuple(sorted(e)) for e in edges}
    assert graph.num_edges == len(unique)
