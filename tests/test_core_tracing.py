"""Tests for model-level tracing."""

from __future__ import annotations

from repro.core import PhoneNetworkModel
from repro.des import Tracer
from repro.des.random import StreamFactory


def test_model_records_infections_and_sends(small_scenario):
    tracer = Tracer(enabled=True, categories=["infect", "send"])
    model = PhoneNetworkModel(small_scenario, StreamFactory(0), tracer=tracer)
    model.seed_infection()
    model.run(until=6.0)

    infections = tracer.by_category("infect")
    sends = tracer.by_category("send")
    assert len(infections) == model.total_infected
    assert infections[0].payload["count"] == 1
    assert len(sends) == model.metrics.get("messages_sent")
    assert all("sent message" in r.message for r in sends)
    # Records appear in time order.
    times = [r.time for r in tracer.records]
    assert times == sorted(times)


def test_trace_time_window_limits_volume(small_scenario):
    tracer = Tracer(enabled=True, categories=["send"], start_time=2.0, end_time=4.0)
    model = PhoneNetworkModel(small_scenario, StreamFactory(0), tracer=tracer)
    model.seed_infection()
    model.run(until=6.0)
    assert all(2.0 <= r.time <= 4.0 for r in tracer.records)


def test_disabled_tracer_is_free(small_scenario):
    model = PhoneNetworkModel(small_scenario, StreamFactory(0))
    model.seed_infection()
    model.run(until=6.0)
    assert len(model.sim.tracer.records) == 0
