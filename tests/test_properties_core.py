"""Property-based tests for core model invariants (hypothesis)."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import StepCurve
from repro.core.user import (
    acceptance_probability,
    solve_acceptance_factor,
    total_acceptance_probability,
)


@given(factor=st.floats(0.0, 1.0), n=st.integers(1, 31))
@settings(max_examples=100, deadline=None)
def test_acceptance_probability_decreasing_in_n(factor, n):
    current = acceptance_probability(factor, n)
    following = acceptance_probability(factor, n + 1)
    assert 0.0 <= following <= current <= 1.0


@given(a=st.floats(0.0, 1.0), b=st.floats(0.0, 1.0))
@settings(max_examples=100, deadline=None)
def test_total_acceptance_monotone_in_factor(a, b):
    low, high = sorted((a, b))
    assert total_acceptance_probability(low) <= total_acceptance_probability(high) + 1e-12


@given(target=st.floats(0.001, 0.6))
@settings(max_examples=50, deadline=None)
def test_solver_inverts_total_acceptance(target):
    factor = solve_acceptance_factor(target)
    assert abs(total_acceptance_probability(factor) - target) < 1e-8


@given(
    event_times=st.lists(st.floats(0.0, 100.0), min_size=1, max_size=100),
    probe=st.floats(0.0, 120.0),
)
@settings(max_examples=100, deadline=None)
def test_infection_curve_monotone_and_bounded(event_times, probe):
    curve = StepCurve.from_event_times(sorted(event_times))
    assert 0.0 <= curve.value_at(probe) <= len(event_times)
    grid = np.linspace(0.0, 120.0, 60)
    values = curve.resample(grid)
    assert np.all(np.diff(values) >= 0)
    assert curve.final_value == len(event_times)


@given(
    event_times=st.lists(st.floats(0.0, 100.0), min_size=1, max_size=50),
    level=st.integers(1, 50),
)
@settings(max_examples=100, deadline=None)
def test_time_to_reach_consistent_with_value_at(event_times, level):
    curve = StepCurve.from_event_times(sorted(event_times))
    t = curve.time_to_reach(float(level))
    if t is None:
        assert curve.final_value < level
    else:
        assert curve.value_at(t) >= level
        # Strictly before t the value is below the level (t is a change point).
        assert curve.value_at(max(0.0, t - 1e-6)) <= curve.value_at(t)
