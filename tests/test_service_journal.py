"""Tests for the campaign daemon's crash-safe persistent queue.

Every scenario here is a crash footprint the journal must survive:
torn trailing writes, lost acks (claim without ack -> recovered
in-flight), and rotation interrupted at each window (tmp left behind,
both segments present).  All tests are pure filesystem -- tier-1 fast.
"""

from __future__ import annotations

import json

import pytest

from repro.service.journal import (
    JOURNAL_SCHEMA_VERSION,
    JournalError,
    PersistentQueue,
    QueuedCampaign,
    RecoveryReport,
)


def payload(tag: str) -> dict:
    return {"design": {"id": tag}, "jobs": 2, "seed": 7}


def segment_names(root) -> list:
    return sorted(p.name for p in root.iterdir())


class TestQueueBasics:
    def test_submit_claim_ack_round_trip(self, tmp_path):
        queue = PersistentQueue(tmp_path)
        campaign = queue.submit(payload("a"))
        assert campaign.campaign_id == "c000000"
        assert queue.depth == 1 and queue.pending == 1

        claimed = queue.claim()
        assert claimed is campaign and claimed.claimed
        assert queue.depth == 1 and queue.pending == 0
        assert queue.claim() is None  # nothing else unclaimed

        queue.ack(claimed.campaign_id)
        assert queue.depth == 0
        queue.close()

    def test_priority_then_fifo_ordering(self, tmp_path):
        queue = PersistentQueue(tmp_path)
        low_first = queue.submit(payload("low-1"), priority=5)
        high = queue.submit(payload("high"), priority=0)
        low_second = queue.submit(payload("low-2"), priority=5)
        order = [queue.claim().campaign_id for _ in range(3)]
        assert order == [
            high.campaign_id,
            low_first.campaign_id,
            low_second.campaign_id,
        ]
        queue.close()

    def test_duplicate_campaign_id_rejected(self, tmp_path):
        queue = PersistentQueue(tmp_path)
        queue.submit(payload("a"), campaign_id="dup")
        with pytest.raises(JournalError, match="already queued"):
            queue.submit(payload("b"), campaign_id="dup")
        queue.close()

    def test_ack_unknown_campaign_rejected(self, tmp_path):
        queue = PersistentQueue(tmp_path)
        with pytest.raises(JournalError, match="unknown campaign"):
            queue.ack("ghost")
        queue.close()

    def test_cancel_only_while_queued(self, tmp_path):
        queue = PersistentQueue(tmp_path)
        queued = queue.submit(payload("a"))
        running = queue.submit(payload("b"))
        assert queue.claim() is queued
        assert not queue.cancel(queued.campaign_id)  # claimed -> running
        assert queue.cancel(running.campaign_id)
        assert not queue.cancel("ghost")
        assert queue.depth == 1  # only the claimed one remains
        queue.close()

    def test_pending_campaigns_in_claim_order(self, tmp_path):
        queue = PersistentQueue(tmp_path)
        late = queue.submit(payload("late"), priority=9)
        early = queue.submit(payload("early"), priority=1)
        assert [c.campaign_id for c in queue.pending_campaigns()] == [
            early.campaign_id,
            late.campaign_id,
        ]
        queue.close()


class TestRecovery:
    def test_pending_campaign_survives_reopen(self, tmp_path):
        with PersistentQueue(tmp_path) as queue:
            submitted = queue.submit(payload("a"), priority=3)

        reopened = PersistentQueue(tmp_path)
        assert reopened.recovery.pending == 1
        assert reopened.recovery.in_flight == 0
        survivor = reopened.get(submitted.campaign_id)
        assert survivor is not None
        assert survivor.priority == 3
        assert survivor.payload == payload("a")
        assert not survivor.recovered
        reopened.close()

    def test_claimed_unacked_campaign_recovers_as_in_flight(self, tmp_path):
        with PersistentQueue(tmp_path) as queue:
            queue.submit(payload("a"))
            queue.claim()  # daemon "dies" before ack

        reopened = PersistentQueue(tmp_path)
        assert reopened.recovery.in_flight == 1
        claimed = reopened.claim()
        assert claimed is not None and claimed.recovered
        reopened.close()

    def test_acked_campaign_never_replays(self, tmp_path):
        with PersistentQueue(tmp_path) as queue:
            queue.submit(payload("a"))
            queue.claim()
            queue.ack("c000000")
            queue.submit(payload("b"))

        reopened = PersistentQueue(tmp_path)
        assert reopened.depth == 1
        assert reopened.get("c000000") is None
        assert reopened.get("c000001") is not None
        reopened.close()

    def test_recovered_in_flight_claims_before_fresh_work(self, tmp_path):
        with PersistentQueue(tmp_path) as queue:
            first = queue.submit(payload("old"))
            queue.claim()
            fresh = queue.submit(payload("new"))

        reopened = PersistentQueue(tmp_path)
        order = [reopened.claim().campaign_id for _ in range(2)]
        assert order == [first.campaign_id, fresh.campaign_id]
        reopened.close()

    def test_torn_trailing_line_skipped_and_counted(self, tmp_path):
        with PersistentQueue(tmp_path) as queue:
            queue.submit(payload("a"))
            segment = tmp_path / "journal-00000000.jsonl"
        with segment.open("a", encoding="utf-8") as handle:
            handle.write('{"journal_schema":1,"record":"sub')  # no newline

        reopened = PersistentQueue(tmp_path)
        assert reopened.recovery.torn_lines == 1
        assert reopened.recovery.bad_lines == 0
        assert reopened.depth == 1
        reopened.close()

    def test_bad_mid_file_lines_skipped_and_counted(self, tmp_path):
        with PersistentQueue(tmp_path) as queue:
            queue.submit(payload("a"))
            segment = tmp_path / "journal-00000000.jsonl"
        text = segment.read_text(encoding="utf-8")
        corrupted = "not json at all\n" + '["a","list"]\n' + text
        segment.write_text(corrupted, encoding="utf-8")

        reopened = PersistentQueue(tmp_path)
        assert reopened.recovery.bad_lines == 2
        assert reopened.recovery.torn_lines == 0
        assert reopened.depth == 1  # the good record still replays
        reopened.close()

    def test_unknown_record_kind_counts_as_bad_line(self, tmp_path):
        segment = tmp_path / "journal-00000000.jsonl"
        segment.write_text(
            json.dumps(
                {
                    "journal_schema": JOURNAL_SCHEMA_VERSION,
                    "record": "explode",
                    "id": "x",
                }
            )
            + "\n",
            encoding="utf-8",
        )
        queue = PersistentQueue(tmp_path)
        assert queue.recovery.bad_lines == 1
        assert queue.depth == 0
        queue.close()

    def test_recovery_report_shape(self, tmp_path):
        queue = PersistentQueue(tmp_path)
        report = queue.recovery.to_dict()
        assert report == {
            "pending": 0,
            "in_flight": 0,
            "torn_lines": 0,
            "bad_lines": 0,
            "segments_swept": 0,
            "replayed_records": 0,
        }
        assert isinstance(queue.recovery, RecoveryReport)
        queue.close()


class TestRotation:
    def test_rotation_compacts_dead_records(self, tmp_path):
        queue = PersistentQueue(tmp_path, rotate_dead_records=2)
        survivor = queue.submit(payload("live"))
        for _ in range(2):
            queue.submit(payload("dead"))
            queue.claim()  # claims the oldest unclaimed -> survivor first
        # Ack the two non-survivor campaigns to cross the rotation bar.
        queue.ack("c000001")
        queue.ack("c000002")
        assert segment_names(tmp_path) == ["journal-00000001.jsonl"]
        queue.close()

        reopened = PersistentQueue(tmp_path)
        assert reopened.depth == 1
        recovered = reopened.get(survivor.campaign_id)
        assert recovered is not None and recovered.recovered
        assert reopened.recovery.replayed_records == 2  # submit + claim
        reopened.close()

    def test_rotation_preserves_claimed_state(self, tmp_path):
        queue = PersistentQueue(tmp_path)
        queue.submit(payload("running"))
        queue.claim()
        queue.submit(payload("waiting"))
        queue.rotate()
        queue.close()

        reopened = PersistentQueue(tmp_path)
        assert reopened.recovery.in_flight == 1
        assert reopened.recovery.pending == 1
        reopened.close()

    def test_crashed_rotation_tmp_file_swept(self, tmp_path):
        with PersistentQueue(tmp_path) as queue:
            queue.submit(payload("a"))
        (tmp_path / ".tmp-journal-00000001").write_text(
            "half-written rotation", encoding="utf-8"
        )
        reopened = PersistentQueue(tmp_path)
        assert reopened.recovery.segments_swept == 1
        assert reopened.depth == 1
        assert segment_names(tmp_path) == ["journal-00000000.jsonl"]
        reopened.close()

    def test_crash_between_rename_and_unlink_keeps_newest(self, tmp_path):
        # Simulate the rotation crash window where both segments exist:
        # the new (compacted) segment must win and the old one is swept.
        with PersistentQueue(tmp_path) as queue:
            queue.submit(payload("stale"))
        old = (tmp_path / "journal-00000000.jsonl").read_text(encoding="utf-8")
        new_segment = tmp_path / "journal-00000001.jsonl"
        new_segment.write_text(
            json.dumps(
                {
                    "journal_schema": JOURNAL_SCHEMA_VERSION,
                    "record": "submit",
                    "id": "compacted",
                    "seq": 5,
                    "priority": 0,
                    "payload": payload("compacted"),
                },
                sort_keys=True,
                separators=(",", ":"),
            )
            + "\n",
            encoding="utf-8",
        )
        assert old  # the stale segment is still on disk

        reopened = PersistentQueue(tmp_path)
        assert reopened.recovery.segments_swept == 1
        assert reopened.get("compacted") is not None
        assert reopened.get("c000000") is None  # stale segment discarded
        assert segment_names(tmp_path) == ["journal-00000001.jsonl"]
        # New submissions continue from the compacted sequence space.
        fresh = reopened.submit(payload("fresh"))
        assert fresh.seq == 6
        reopened.close()

    def test_rotate_dead_records_validation(self, tmp_path):
        with pytest.raises(ValueError, match="rotate_dead_records"):
            PersistentQueue(tmp_path, rotate_dead_records=0)


def test_queued_campaign_sort_key():
    a = QueuedCampaign("a", priority=1, payload={}, seq=9)
    b = QueuedCampaign("b", priority=0, payload={}, seq=10)
    assert sorted([a, b], key=QueuedCampaign.sort_key)[0] is b
