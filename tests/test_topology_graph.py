"""Tests for the ContactGraph structure."""

from __future__ import annotations

import pytest

from repro.topology import ContactGraph


def test_empty_graph():
    graph = ContactGraph(0)
    assert graph.num_nodes == 0
    assert graph.num_edges == 0
    assert graph.mean_degree() == 0.0


def test_add_and_query_edges():
    graph = ContactGraph(4)
    assert graph.add_edge(0, 1) is True
    assert graph.add_edge(1, 0) is False  # duplicate (reversed) ignored
    assert graph.has_edge(0, 1)
    assert graph.has_edge(1, 0)
    assert not graph.has_edge(0, 2)
    assert graph.num_edges == 1


def test_self_loop_rejected():
    graph = ContactGraph(3)
    with pytest.raises(ValueError):
        graph.add_edge(1, 1)


def test_out_of_range_rejected():
    graph = ContactGraph(3)
    with pytest.raises(ValueError):
        graph.add_edge(0, 3)
    with pytest.raises(ValueError):
        graph.degree(-1)


def test_remove_edge():
    graph = ContactGraph(3)
    graph.add_edge(0, 1)
    assert graph.remove_edge(1, 0) is True
    assert graph.remove_edge(0, 1) is False
    assert graph.num_edges == 0


def test_neighbors_sorted_and_reciprocal():
    graph = ContactGraph(5)
    graph.add_edge(2, 4)
    graph.add_edge(2, 0)
    graph.add_edge(2, 3)
    assert graph.neighbors(2) == (0, 3, 4)
    assert graph.is_reciprocal()
    for neighbor in graph.neighbors(2):
        assert 2 in graph.neighbors(neighbor)


def test_degrees_and_mean():
    graph = ContactGraph.from_edges(4, [(0, 1), (0, 2), (0, 3)])
    assert graph.degrees() == [3, 1, 1, 1]
    assert graph.mean_degree() == pytest.approx(1.5)
    assert graph.degree(0) == 3


def test_edges_iteration_sorted():
    graph = ContactGraph.from_edges(4, [(2, 3), (0, 1), (1, 3)])
    assert list(graph.edges()) == [(0, 1), (1, 3), (2, 3)]


def test_contact_lists_covers_population():
    graph = ContactGraph.from_edges(3, [(0, 1)])
    lists = graph.contact_lists()
    assert lists == {0: (1,), 1: (0,), 2: ()}


def test_isolated_nodes():
    graph = ContactGraph.from_edges(4, [(0, 1)])
    assert graph.isolated_nodes() == [2, 3]


def test_copy_is_independent():
    graph = ContactGraph.from_edges(3, [(0, 1)])
    clone = graph.copy()
    clone.add_edge(1, 2)
    assert not graph.has_edge(1, 2)
    assert clone.has_edge(1, 2)
    assert graph.num_edges == 1
    assert clone.num_edges == 2


def test_subgraph_relabels():
    graph = ContactGraph.from_edges(5, [(0, 2), (2, 4), (1, 3)])
    sub = graph.subgraph([0, 2, 4])
    assert sub.num_nodes == 3
    assert sub.has_edge(0, 1)  # was (0, 2)
    assert sub.has_edge(1, 2)  # was (2, 4)
    assert sub.num_edges == 2
