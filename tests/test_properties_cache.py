"""Property tests: cache keys are stable across serialization and dict order.

The result cache (and therefore every cached experiment) relies on
``result_key`` being a pure function of the scenario *content*.  Two ways
that could silently break are (a) a lossy ``scenario_to_dict`` /
``scenario_from_dict`` round trip and (b) sensitivity to dict insertion
order somewhere in the canonicalization.  Hypothesis drives both with
arbitrary valid configurations.
"""

from __future__ import annotations

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st

from repro.core.cache import result_key
from repro.core.parameters import (
    BlacklistConfig,
    GatewayScanConfig,
    LimitPeriod,
    MonitoringConfig,
    NetworkParameters,
    ScenarioConfig,
    Targeting,
    UserParameters,
    VirusParameters,
)
from repro.core.serialization import scenario_from_dict, scenario_to_dict

BOUNDED_FLOATS = st.floats(
    min_value=0.0, max_value=48.0, allow_nan=False, allow_infinity=False
)


@st.composite
def virus_strategy(draw) -> VirusParameters:
    message_limit = draw(st.one_of(st.none(), st.integers(1, 60)))
    if message_limit is None:
        limit_period = LimitPeriod.NONE
        counts_recipients = False
        global_windows = False
    else:
        limit_period = draw(
            st.sampled_from([LimitPeriod.REBOOT, LimitPeriod.FIXED_WINDOW])
        )
        counts_recipients = draw(st.booleans())
        global_windows = limit_period is LimitPeriod.FIXED_WINDOW and draw(
            st.booleans()
        )
    return VirusParameters(
        name=draw(st.sampled_from(["alpha", "beta", "gamma"])),
        targeting=draw(st.sampled_from(list(Targeting))),
        recipients_per_message=draw(st.integers(1, 100)),
        min_send_interval=draw(BOUNDED_FLOATS),
        extra_send_delay_mean=draw(BOUNDED_FLOATS),
        message_limit=message_limit,
        limit_counts_recipients=counts_recipients,
        limit_period=limit_period,
        reboot_interval_mean=draw(st.floats(0.5, 72.0)),
        limit_window=draw(st.floats(0.5, 72.0)),
        global_limit_windows=global_windows,
        dormancy=draw(BOUNDED_FLOATS),
        valid_number_fraction=draw(st.floats(0.01, 1.0)),
        bluetooth_rate=draw(st.floats(0.0, 5.0)),
    )


@st.composite
def network_strategy(draw) -> NetworkParameters:
    population = draw(st.integers(5, 300))
    return NetworkParameters(
        population=population,
        susceptible_fraction=draw(st.floats(0.1, 1.0)),
        topology_model=draw(st.sampled_from(["powerlaw", "random"])),
        mean_contact_list_size=draw(st.floats(1.0, float(population - 1))),
        powerlaw_exponent=draw(st.floats(1.2, 3.0)),
        gateway_delay_mean=draw(BOUNDED_FLOATS),
    )


@st.composite
def scenario_strategy(draw) -> ScenarioConfig:
    responses = draw(
        st.lists(
            st.sampled_from(
                [
                    GatewayScanConfig(activation_delay=12.0),
                    MonitoringConfig(),
                    BlacklistConfig(threshold=10),
                ]
            ),
            unique_by=type,
            max_size=3,
        )
    )
    return ScenarioConfig(
        name=draw(st.sampled_from(["scenario-a", "scenario-b"])),
        virus=draw(virus_strategy()),
        network=draw(network_strategy()),
        user=UserParameters(
            acceptance_factor=draw(st.floats(0.0, 1.0)),
            read_delay_mean=draw(BOUNDED_FLOATS),
        ),
        responses=tuple(responses),
        duration=draw(st.floats(1.0, 432.0)),
    )


def _reorder(value, reverse: bool):
    """Recursively rebuild dicts with reversed insertion order."""
    if isinstance(value, dict):
        items = sorted(value.items(), reverse=reverse)
        return {k: _reorder(v, reverse) for k, v in items}
    if isinstance(value, list):
        return [_reorder(v, reverse) for v in value]
    return value


@settings(max_examples=40, deadline=None)
@given(config=scenario_strategy(), seed=st.integers(0, 2**31), rep=st.integers(0, 99))
def test_key_survives_serialization_round_trip(config, seed, rep):
    restored = scenario_from_dict(scenario_to_dict(config))
    assert restored == config
    assert result_key(restored, seed, rep) == result_key(config, seed, rep)


@settings(max_examples=40, deadline=None)
@given(config=scenario_strategy(), seed=st.integers(0, 2**31))
def test_key_independent_of_dict_ordering(config, seed):
    payload = scenario_to_dict(config)
    forward = scenario_from_dict(_reorder(payload, reverse=False))
    backward = scenario_from_dict(_reorder(payload, reverse=True))
    assert result_key(forward, seed, 0) == result_key(backward, seed, 0)
    assert result_key(forward, seed, 0) == result_key(config, seed, 0)


@settings(max_examples=25, deadline=None)
@given(config=scenario_strategy(), seed=st.integers(0, 2**31))
def test_key_discriminates_seed_replication_and_content(config, seed):
    base = result_key(config, seed, 0)
    assert result_key(config, seed + 1, 0) != base
    assert result_key(config, seed, 1) != base
    assert result_key(config.with_duration(config.duration + 1.0), seed, 0) != base
    assert result_key(config, seed, 0, schema_version=10**6) != base
