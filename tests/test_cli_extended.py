"""Tests for the extended CLI commands (sweep, scenario, svg export)."""

from __future__ import annotations

import dataclasses

import pytest

from repro.cli import main
from repro.core import NetworkParameters, baseline_scenario
from repro.core.serialization import save_scenario


def small_scenario_file(tmp_path):
    scenario = dataclasses.replace(
        baseline_scenario(3, duration=4.0),
        network=NetworkParameters(population=120, mean_contact_list_size=12.0),
    )
    return save_scenario(scenario, tmp_path / "scenario.json")


def test_scenario_command_runs_file(tmp_path, capsys):
    path = small_scenario_file(tmp_path)
    code = main(["scenario", str(path), "--replications", "1", "--no-chart"])
    assert code == 0
    output = capsys.readouterr().out
    assert "virus3-baseline" in output
    assert "final infected" in output


def test_scenario_command_missing_file(tmp_path, capsys):
    code = main(["scenario", str(tmp_path / "nope.json")])
    assert code == 2
    assert "cannot load scenario" in capsys.readouterr().err


def test_scenario_command_bad_json(tmp_path, capsys):
    path = tmp_path / "bad.json"
    path.write_text("{not json")
    assert main(["scenario", str(path)]) == 2


def test_sweep_command_unknown_id(capsys):
    assert main(["sweep", "warp_factor"]) == 2
    assert "unknown sweep" in capsys.readouterr().err


def test_figure_svg_export(tmp_path, capsys, monkeypatch):
    """`figure --svg` writes a chart file (tiny replication count)."""
    # fig3 is the fastest registered experiment at full scale.
    out = tmp_path / "fig3.svg"
    code = main(
        ["figure", "fig3", "--replications", "1", "--no-chart",
         "--svg", str(out)]
    )
    assert out.exists()
    text = out.read_text()
    assert text.startswith("<svg")
    assert "baseline" in text
    assert code in (0, 1)  # single-replication checks may be noisy
