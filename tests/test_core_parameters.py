"""Tests for parameter dataclass validation and helpers."""

from __future__ import annotations

import pytest

from repro.core import (
    BlacklistConfig,
    DetectionAlgorithmConfig,
    DetectionParameters,
    GatewayScanConfig,
    ImmunizationConfig,
    LimitPeriod,
    MonitoringConfig,
    NetworkParameters,
    ScenarioConfig,
    Targeting,
    UserEducationConfig,
    UserParameters,
    VirusParameters,
)
from repro.core.user import total_acceptance_probability
from repro.des.random import ShiftedExponential


class TestVirusParameters:
    def test_send_interval_distribution(self):
        virus = VirusParameters(
            name="v", min_send_interval=0.5, extra_send_delay_mean=0.25
        )
        dist = virus.send_interval_distribution()
        assert isinstance(dist, ShiftedExponential)
        assert dist.shift == 0.5
        assert dist.mean == 0.75

    def test_limit_requires_period(self):
        with pytest.raises(ValueError, match="limit_period"):
            VirusParameters(name="v", message_limit=30)

    def test_period_requires_limit(self):
        with pytest.raises(ValueError):
            VirusParameters(name="v", limit_period=LimitPeriod.REBOOT)

    def test_global_windows_require_fixed_window(self):
        with pytest.raises(ValueError):
            VirusParameters(
                name="v",
                message_limit=30,
                limit_period=LimitPeriod.REBOOT,
                global_limit_windows=True,
            )

    def test_recipient_budget_requires_limit(self):
        with pytest.raises(ValueError):
            VirusParameters(name="v", limit_counts_recipients=True)

    def test_valid_number_fraction_bounds(self):
        with pytest.raises(ValueError):
            VirusParameters(name="v", valid_number_fraction=0.0)
        with pytest.raises(ValueError):
            VirusParameters(name="v", valid_number_fraction=1.2)

    def test_misc_validation(self):
        with pytest.raises(ValueError):
            VirusParameters(name="")
        with pytest.raises(ValueError):
            VirusParameters(name="v", recipients_per_message=0)
        with pytest.raises(ValueError):
            VirusParameters(name="v", min_send_interval=-1.0)
        with pytest.raises(ValueError):
            VirusParameters(name="v", dormancy=-1.0)


class TestUserParameters:
    def test_defaults_match_paper(self):
        user = UserParameters()
        assert user.acceptance_factor == pytest.approx(0.468)

    def test_zero_read_delay_supported(self):
        dist = UserParameters(read_delay_mean=0.0).read_delay_distribution()
        import numpy as np

        assert dist.sample(np.random.default_rng(0)) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            UserParameters(acceptance_factor=1.5)
        with pytest.raises(ValueError):
            UserParameters(read_delay_mean=-1.0)


class TestNetworkParameters:
    def test_paper_defaults(self):
        network = NetworkParameters()
        assert network.population == 1000
        assert network.susceptible_count == 800
        assert network.mean_contact_list_size == 80.0

    def test_susceptible_count_rounds(self):
        assert NetworkParameters(population=999).susceptible_count == 799

    def test_validation(self):
        with pytest.raises(ValueError):
            NetworkParameters(population=1)
        with pytest.raises(ValueError):
            NetworkParameters(susceptible_fraction=0.0)
        with pytest.raises(ValueError):
            NetworkParameters(population=50, mean_contact_list_size=80.0)


class TestResponseConfigs:
    def test_scan_validation(self):
        GatewayScanConfig(0.0)  # zero delay allowed
        with pytest.raises(ValueError):
            GatewayScanConfig(-1.0)

    def test_detection_algorithm_validation(self):
        with pytest.raises(ValueError):
            DetectionAlgorithmConfig(accuracy=1.5)
        with pytest.raises(ValueError):
            DetectionAlgorithmConfig(analysis_period=-1.0)

    def test_education_for_total_acceptance(self):
        config = UserEducationConfig.for_total_acceptance(0.20)
        scaled = 0.468 * config.acceptance_scale
        assert total_acceptance_probability(scaled) == pytest.approx(0.20, abs=1e-6)

    def test_education_validation(self):
        with pytest.raises(ValueError):
            UserEducationConfig(acceptance_scale=-0.1)

    def test_immunization_validation(self):
        with pytest.raises(ValueError):
            ImmunizationConfig(development_time=-1.0)
        with pytest.raises(ValueError):
            ImmunizationConfig(deployment_window=0.0)

    def test_monitoring_validation(self):
        with pytest.raises(ValueError):
            MonitoringConfig(forced_wait=0.0)
        with pytest.raises(ValueError):
            MonitoringConfig(threshold=0)
        with pytest.raises(ValueError):
            MonitoringConfig(window=0.0)

    def test_blacklist_validation(self):
        with pytest.raises(ValueError):
            BlacklistConfig(threshold=0)

    def test_detection_parameters_validation(self):
        with pytest.raises(ValueError):
            DetectionParameters(detectable_infections=0)


class TestScenarioConfig:
    def test_with_responses_appends_and_renames(self):
        base = ScenarioConfig(name="base", virus=VirusParameters(name="v"))
        extended = base.with_responses(GatewayScanConfig(6.0), suffix="scan")
        assert extended.name == "base+scan"
        assert len(extended.responses) == 1
        assert base.responses == ()  # original untouched

    def test_with_duration(self):
        base = ScenarioConfig(name="base", virus=VirusParameters(name="v"))
        assert base.with_duration(10.0).duration == 10.0

    def test_validation(self):
        with pytest.raises(ValueError):
            ScenarioConfig(name="", virus=VirusParameters(name="v"))
        with pytest.raises(ValueError):
            ScenarioConfig(name="x", virus=VirusParameters(name="v"), duration=0.0)
