"""Tests for the vectorized waypoint field + spatial-hash grid.

The grid is the xl Bluetooth channel's partner source, so its one hard
contract — ``neighbors_within`` returns exactly the brute-force
within-radius set — is pinned both by seeded sweeps and by a Hypothesis
property over random positions and radii.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.parameters import MobilityParameters
from repro.mobility import (
    GridSnapshot,
    GridWaypointField,
    brute_force_neighbors,
)


def make_field(n=200, arena=100.0, radius=8.0, seed=0) -> GridWaypointField:
    params = MobilityParameters(
        arena_size=arena,
        speed_min=10.0,
        speed_max=40.0,
        pause_min=0.0,
        pause_max=0.5,
        bluetooth_radius=radius,
    )
    return GridWaypointField(n, params, np.random.default_rng(seed))


class TestGridSnapshot:
    def test_neighbors_match_brute_force_seeded_sweep(self):
        rng = np.random.default_rng(42)
        for _ in range(50):
            n = int(rng.integers(2, 120))
            arena = float(rng.uniform(5.0, 500.0))
            radius = float(rng.uniform(0.5, arena))
            positions = rng.uniform(0.0, arena, size=(n, 2))
            snapshot = GridSnapshot(positions, arena, radius)
            for phone in rng.integers(0, n, size=5):
                expected = np.sort(brute_force_neighbors(positions, int(phone), radius))
                actual = snapshot.neighbors_within(int(phone))
                np.testing.assert_array_equal(actual, expected)

    def test_sampled_partner_always_in_range(self):
        rng = np.random.default_rng(1)
        positions = rng.uniform(0.0, 50.0, size=(300, 2))
        snapshot = GridSnapshot(positions, 50.0, 5.0)
        sources = rng.integers(0, 300, size=500)
        partners = snapshot.sample_partners(sources, rng)
        for source, partner in zip(sources, partners):
            if partner < 0:
                assert brute_force_neighbors(positions, int(source), 5.0).size == 0
            else:
                assert partner != source
                assert partner in brute_force_neighbors(positions, int(source), 5.0)

    def test_sampled_partner_roughly_uniform(self):
        # Phone 0 with exactly two equidistant neighbors: each should win
        # about half of many independent encounters.
        positions = np.array([[10.0, 10.0], [11.0, 10.0], [9.0, 10.0], [90.0, 90.0]])
        snapshot = GridSnapshot(positions, 100.0, 5.0)
        rng = np.random.default_rng(2)
        sources = np.zeros(2000, dtype=np.int64)
        partners = snapshot.sample_partners(sources, rng)
        counts = np.bincount(partners, minlength=4)
        assert counts[0] == counts[3] == 0
        assert abs(counts[1] - counts[2]) < 200  # ~1000 each

    def test_isolated_source_fizzles(self):
        positions = np.array([[1.0, 1.0], [99.0, 99.0]])
        snapshot = GridSnapshot(positions, 100.0, 5.0)
        partners = snapshot.sample_partners(
            np.array([0, 1]), np.random.default_rng(3)
        )
        assert partners.tolist() == [-1, -1]

    def test_validation(self):
        positions = np.zeros((3, 2))
        with pytest.raises(ValueError):
            GridSnapshot(positions, 10.0, 0.0)
        with pytest.raises(ValueError):
            GridSnapshot(positions, 0.0, 1.0)

    def test_radius_larger_than_arena_single_cell(self):
        # ncells clamps to 1: the whole arena is one cell and every other
        # phone is a candidate.
        rng = np.random.default_rng(4)
        positions = rng.uniform(0.0, 10.0, size=(20, 2))
        snapshot = GridSnapshot(positions, 10.0, 50.0)
        assert snapshot.ncells == 1
        assert snapshot.neighbors_within(0).size == 19


class TestGridWaypointField:
    def test_positions_stay_in_arena_over_long_horizon(self):
        field = make_field()
        for time in (0.0, 1.0, 10.0, 100.0, 1000.0):
            points = field.positions(time)
            assert np.all(points >= 0.0)
            assert np.all(points <= 100.0)

    def test_positions_continuous_in_time(self):
        field = make_field(n=20)
        previous = field.positions(0.0)
        for step in range(1, 100):
            current = field.positions(step * 0.05)
            jump = np.hypot(*(current - previous).T)
            # Max speed 40 units/h x 0.05 h = 2 units per step.
            assert np.all(jump <= 2.0 + 1e-9)
            previous = current

    def test_time_monotonicity_enforced(self):
        field = make_field(n=5)
        field.positions(10.0)
        with pytest.raises(ValueError, match="monotone"):
            field.positions(5.0)

    def test_snapshot_defaults_to_bluetooth_radius(self):
        field = make_field(radius=8.0)
        snapshot = field.snapshot(1.0)
        assert snapshot.radius == 8.0
        assert field.snapshot(2.0, radius=3.0).radius == 3.0

    def test_deterministic_given_seed(self):
        a = make_field(seed=7).positions(25.0)
        b = make_field(seed=7).positions(25.0)
        np.testing.assert_array_equal(a, b)

    def test_validation(self):
        params = MobilityParameters()
        with pytest.raises(ValueError):
            GridWaypointField(0, params, np.random.default_rng(0))


# -- Hypothesis property: grid == brute force --------------------------------

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st  # noqa: E402


@st.composite
def grid_cases(draw):
    n = draw(st.integers(min_value=2, max_value=60))
    arena = draw(st.floats(min_value=1.0, max_value=1000.0,
                           allow_nan=False, allow_infinity=False))
    radius = draw(st.floats(min_value=0.01, max_value=2.0,
                            allow_nan=False, allow_infinity=False)) * arena
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    positions = np.random.default_rng(seed).uniform(0.0, arena, size=(n, 2))
    phone = draw(st.integers(min_value=0, max_value=n - 1))
    return positions, arena, radius, phone


@settings(max_examples=200, deadline=None)
@given(grid_cases())
def test_property_grid_equals_brute_force(case):
    positions, arena, radius, phone = case
    snapshot = GridSnapshot(positions, arena, radius)
    expected = np.sort(brute_force_neighbors(positions, phone, radius))
    np.testing.assert_array_equal(snapshot.neighbors_within(phone), expected)
