"""Tests for the experiment-level replication scheduler.

Covers the PR's core guarantees: scheduler output is bit-identical to the
serial path (curves, counters, response stats), the cache short-circuits
repeat work and invalidates on config changes, and reassembly restores
job order under arbitrary out-of-order completion.
"""

from __future__ import annotations

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    NetworkParameters,
    ResultCache,
    ScenarioConfig,
    UserEducationConfig,
    UserParameters,
    VirusParameters,
    replicate_scenario,
)
from repro.experiments import (
    ExperimentSpec,
    ReplicationJob,
    ReplicationScheduler,
    SeriesSpec,
    flatten_experiment,
    reassemble,
    run_experiment,
    run_experiment_batch,
)


@pytest.fixture
def mini_scenario() -> ScenarioConfig:
    """A very small scenario (~100 ms) for scheduler matrix tests."""
    return ScenarioConfig(
        name="mini",
        virus=VirusParameters(
            name="mini-virus", min_send_interval=0.05, extra_send_delay_mean=0.05
        ),
        network=NetworkParameters(population=80, mean_contact_list_size=10.0),
        user=UserParameters(read_delay_mean=0.1),
        duration=6.0,
    )


@pytest.fixture
def mini_spec(mini_scenario) -> ExperimentSpec:
    """A two-series experiment over the mini scenario."""
    educated = mini_scenario.with_responses(
        UserEducationConfig(acceptance_scale=0.5), suffix="edu"
    )
    return ExperimentSpec(
        experiment_id="mini",
        title="Mini",
        paper_ref="(test)",
        description="scheduler test experiment",
        series=(
            SeriesSpec("baseline", mini_scenario),
            SeriesSpec("educated", educated),
        ),
        checkpoints=(3.0,),
    )


def _assert_sets_identical(actual, expected):
    """Bit-identical comparison of two ReplicationSets."""
    assert [r.replication for r in actual.results] == [
        r.replication for r in expected.results
    ]
    assert [r.infection_times for r in actual.results] == [
        r.infection_times for r in expected.results
    ]
    assert [r.counters for r in actual.results] == [
        r.counters for r in expected.results
    ]
    assert [r.response_stats for r in actual.results] == [
        r.response_stats for r in expected.results
    ]
    assert [r.final_time for r in actual.results] == [
        r.final_time for r in expected.results
    ]
    assert [r.patient_zero for r in actual.results] == [
        r.patient_zero for r in expected.results
    ]
    for a_curve, e_curve in zip(actual.curves(), expected.curves()):
        assert a_curve.times.tolist() == e_curve.times.tolist()
        assert a_curve.values.tolist() == e_curve.values.tolist()


class TestBitIdentity:
    def test_serial_scheduler_matches_reference(self, mini_spec):
        expected = {
            series.label: replicate_scenario(series.scenario, replications=2, seed=11)
            for series in mini_spec.series
        }
        result = run_experiment(mini_spec, replications=2, seed=11)
        for label, expected_set in expected.items():
            _assert_sets_identical(result.series_results[label], expected_set)

    def test_parallel_scheduler_matches_reference(self, mini_spec):
        expected = {
            series.label: replicate_scenario(series.scenario, replications=2, seed=11)
            for series in mini_spec.series
        }
        result = run_experiment(mini_spec, replications=2, seed=11, processes=2)
        for label, expected_set in expected.items():
            _assert_sets_identical(result.series_results[label], expected_set)

    def test_cached_rerun_matches_reference(self, mini_spec, tmp_path):
        expected = run_experiment(mini_spec, replications=2, seed=11)
        cache = ResultCache(tmp_path / "cache")
        run_experiment(mini_spec, replications=2, seed=11, cache=cache)
        cached = run_experiment(
            mini_spec, replications=2, seed=11, cache=ResultCache(tmp_path / "cache")
        )
        for label in expected.series_results:
            _assert_sets_identical(
                cached.series_results[label], expected.series_results[label]
            )


class TestCacheIntegration:
    def test_second_run_does_zero_simulation(self, mini_spec, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        with ReplicationScheduler(processes=1, cache=cache) as scheduler:
            scheduler.run_experiment(mini_spec, replications=2, seed=3)
            assert scheduler.stats.executed == 4
            assert scheduler.stats.cache_hits == 0
        with ReplicationScheduler(
            processes=1, cache=ResultCache(tmp_path / "cache")
        ) as scheduler:
            scheduler.run_experiment(mini_spec, replications=2, seed=3)
            assert scheduler.stats.executed == 0
            assert scheduler.stats.cache_hits == 4

    def test_config_change_invalidates(self, mini_scenario, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        with ReplicationScheduler(processes=1, cache=cache) as scheduler:
            scheduler.replicate(mini_scenario, replications=1, seed=3)
        changed = dataclasses.replace(mini_scenario, duration=7.0)
        with ReplicationScheduler(
            processes=1, cache=ResultCache(tmp_path / "cache")
        ) as scheduler:
            scheduler.replicate(changed, replications=1, seed=3)
            assert scheduler.stats.executed == 1
            assert scheduler.stats.cache_hits == 0

    def test_seed_change_invalidates(self, mini_scenario, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        with ReplicationScheduler(processes=1, cache=cache) as scheduler:
            scheduler.replicate(mini_scenario, replications=1, seed=3)
            scheduler.replicate(mini_scenario, replications=1, seed=4)
            assert scheduler.stats.executed == 2

    def test_extra_replications_partial_hit(self, mini_scenario, tmp_path):
        with ReplicationScheduler(
            processes=1, cache=ResultCache(tmp_path / "cache")
        ) as scheduler:
            scheduler.replicate(mini_scenario, replications=2, seed=3)
        with ReplicationScheduler(
            processes=1, cache=ResultCache(tmp_path / "cache")
        ) as scheduler:
            scheduler.replicate(mini_scenario, replications=4, seed=3)
            assert scheduler.stats.cache_hits == 2
            assert scheduler.stats.executed == 2


class TestBatch:
    def test_batch_matches_individual_runs(self, mini_spec, mini_scenario):
        other = ExperimentSpec(
            experiment_id="mini2",
            title="Mini 2",
            paper_ref="(test)",
            description="second batch spec",
            series=(SeriesSpec("solo", mini_scenario),),
        )
        individual = [
            run_experiment(mini_spec, replications=1, seed=5),
            run_experiment(other, replications=1, seed=5),
        ]
        batched = run_experiment_batch([mini_spec, other], replications=1, seed=5)
        assert len(batched) == 2
        for one, many in zip(individual, batched):
            assert one.spec.experiment_id == many.spec.experiment_id
            for label in one.series_results:
                _assert_sets_identical(
                    many.series_results[label], one.series_results[label]
                )

    def test_flatten_order(self, mini_spec):
        jobs = flatten_experiment(mini_spec, replications=3, seed=9)
        assert len(jobs) == 6
        assert [j.replication for j in jobs] == [0, 1, 2, 0, 1, 2]
        assert jobs[0].config == mini_spec.series[0].scenario
        assert jobs[3].config == mini_spec.series[1].scenario
        assert all(j.seed == 9 for j in jobs)

    def test_flatten_validates_replications(self, mini_spec):
        with pytest.raises(ValueError):
            flatten_experiment(mini_spec, replications=0)


class TestReassembly:
    @settings(max_examples=50, deadline=None)
    @given(st.permutations(list(range(12))))
    def test_out_of_order_completion_preserves_order(self, order):
        completions = [(index, f"result-{index}") for index in order]
        assert reassemble(12, completions) == [f"result-{i}" for i in range(12)]

    def test_missing_completion_raises(self):
        with pytest.raises(ValueError, match="missing"):
            reassemble(3, [(0, "a"), (2, "c")])

    def test_duplicate_completion_raises(self):
        with pytest.raises(ValueError, match="duplicate"):
            reassemble(2, [(0, "a"), (0, "b")])

    def test_out_of_range_index_raises(self):
        with pytest.raises(ValueError, match="out of range"):
            reassemble(2, [(5, "a")])


class TestValidation:
    def test_processes_must_be_positive(self):
        with pytest.raises(ValueError):
            ReplicationScheduler(processes=0)

    def test_run_jobs_empty(self):
        with ReplicationScheduler() as scheduler:
            assert scheduler.run_jobs([]) == []

    def test_replication_job_is_frozen(self, mini_scenario):
        job = ReplicationJob(config=mini_scenario, seed=0, replication=0)
        with pytest.raises(dataclasses.FrozenInstanceError):
            job.seed = 1


class TestTelemetry:
    """Scheduler-level run telemetry and manifest emission."""

    def test_disabled_by_default(self, mini_spec):
        with ReplicationScheduler(processes=1) as scheduler:
            scheduler.run_experiment(mini_spec, replications=1, seed=0)
            tele = scheduler.telemetry()
        assert tele["workers"] == []
        assert tele["events_executed"] == 0

    def test_telemetry_aggregates_serial_run(self, mini_spec, tmp_path):
        from repro.obs.metrics import Metrics

        cache = ResultCache(tmp_path / "c")
        metrics = Metrics(enabled=True)
        with ReplicationScheduler(
            processes=1, cache=cache, metrics=metrics
        ) as scheduler:
            scheduler.run_experiment(mini_spec, replications=2, seed=1)
            tele = scheduler.telemetry()
        assert tele["scheduler"]["scheduled"] == 4  # 2 series x 2 replications
        assert tele["scheduler"]["executed"] == 4
        assert tele["scheduler"]["cache_hits"] == 0
        assert tele["events_executed"] > 0
        assert tele["events_per_second"] > 0
        assert tele["wall_seconds"] > 0
        # Serial execution still reports one (inline) worker row.
        assert len(tele["workers"]) == 1
        worker = tele["workers"][0]
        assert worker["jobs"] == 4
        assert worker["events"] == tele["events_executed"]
        assert worker["events_per_second"] > 0
        assert tele["kernel"]["events_fired"] == tele["events_executed"]
        assert tele["kernel"]["heap_peak"] > 0
        assert tele["cache"]["hit_ratio"] == 0.0
        import os

        assert os.path.isabs(tele["cache"]["dir"])

    def test_cache_hits_reflected_in_telemetry(self, mini_spec, tmp_path):
        from repro.obs.metrics import Metrics

        with ReplicationScheduler(
            processes=1,
            cache=ResultCache(tmp_path / "c"),
            metrics=Metrics(enabled=True),
        ) as scheduler:
            scheduler.run_experiment(mini_spec, replications=2, seed=1)
        # Fresh cache handle over the same directory: its hit/miss counters
        # cover only the second run, so every lookup is a hit.
        with ReplicationScheduler(
            processes=1,
            cache=ResultCache(tmp_path / "c"),
            metrics=Metrics(enabled=True),
        ) as scheduler:
            scheduler.run_experiment(mini_spec, replications=2, seed=1)
            tele = scheduler.telemetry()
        assert tele["scheduler"]["cache_hits"] == 4
        assert tele["scheduler"]["executed"] == 0
        assert tele["cache"]["hit_ratio"] == 1.0
        assert tele["events_executed"] == 0

    def test_results_identical_with_telemetry_enabled(self, mini_spec):
        from repro.obs.metrics import Metrics

        plain = run_experiment(mini_spec, replications=2, seed=6)
        with ReplicationScheduler(
            processes=1, metrics=Metrics(enabled=True)
        ) as scheduler:
            instrumented = scheduler.run_experiment(
                mini_spec, replications=2, seed=6
            )
        for label, expected_set in plain.series_results.items():
            _assert_sets_identical(
                instrumented.series_results[label], expected_set
            )

    def test_write_manifest_schema_valid(self, mini_spec, tmp_path):
        from repro.obs.manifest import read_manifests, validate_manifest
        from repro.obs.metrics import Metrics

        cache = ResultCache(tmp_path / "c")
        path = tmp_path / "run.jsonl"
        with ReplicationScheduler(
            processes=1, cache=cache, metrics=Metrics(enabled=True)
        ) as scheduler:
            scheduler.run_experiment(mini_spec, replications=2, seed=2)
            scheduler.write_manifest(path, label="test-run")
        (record,) = read_manifests(path)
        assert validate_manifest(record) == []
        assert record["kind"] == "run"
        assert record["label"] == "test-run"
        assert record["replications"] == 4
        assert record["seeds"] == [2]
        scenario_names = {s["name"] for s in record["scenarios"]}
        assert scenario_names == {"mini", "mini+edu"}
        assert all(len(s["hash"]) == 64 for s in record["scenarios"])
        assert record["workers"][0]["jobs"] == 4
        assert record["cache"]["hit_ratio"] == 0.0


class _InterruptingPool:
    """Stub pool whose dispatch raises KeyboardInterrupt mid-campaign."""

    def __init__(self):
        self.terminated = False
        self.closed = False

    def imap_indexed(self, jobs, job_count=None):
        raise KeyboardInterrupt

    def imap_indexed_timed(self, jobs, job_count=None):
        raise KeyboardInterrupt

    def close(self):
        self.closed = True

    def terminate(self):
        self.terminated = True


class TestInterruptCleanup:
    """Regression: a Ctrl-C mid-campaign used to leak the worker pool and
    leave ``.tmp-*.json`` orphans from interrupted atomic cache writes;
    the scheduler's exceptional exit must terminate the pool, sweep the
    orphans, and flush the checkpoint."""

    def test_interrupt_terminates_pool_and_sweeps_orphans(
        self, mini_scenario, tmp_path
    ):
        from repro.resilience import CampaignCheckpoint, load_checkpoint

        cache = ResultCache(tmp_path / "c")
        shard = cache.root / "ab"
        shard.mkdir(parents=True)
        orphan = shard / ".tmp-interrupted0.json"
        orphan.write_text("{partial")
        checkpoint_path = tmp_path / "ck.json"
        pool = _InterruptingPool()
        with pytest.raises(KeyboardInterrupt):
            with ReplicationScheduler(
                processes=2,
                cache=cache,
                pool=pool,
                checkpoint=CampaignCheckpoint(checkpoint_path, label="int"),
            ) as scheduler:
                scheduler.replicate(mini_scenario, replications=2, seed=0)
        assert pool.terminated  # no leaked workers
        assert not orphan.exists()  # tmp orphans swept
        assert load_checkpoint(checkpoint_path) is not None  # progress saved

    def test_clean_exit_does_not_terminate_external_pool(
        self, mini_scenario, tmp_path
    ):
        pool = _InterruptingPool()
        with ReplicationScheduler(processes=2, cache=None, pool=pool):
            pass  # no work dispatched
        assert not pool.terminated
        assert not pool.closed  # externally owned: left running


class TestAutoDegrade:
    """Dispatch planning: small campaigns must not pay for a pool.

    The cost model (pool startup + per-chunk dispatch vs. perfect work
    division) projects a tiny 4-job campaign as losing to serial on any
    machine — 4 x 0.05 s of work never amortises a 0.25 s pool spin-up —
    so ``--processes 4`` on a tiny grid degrades to inline execution,
    logs the decision, and stays bit-identical to the serial path.
    """

    def test_small_campaign_degrades_to_serial_and_logs(self, mini_spec):
        with ReplicationScheduler(processes=4) as scheduler:
            scheduler.run_experiment(mini_spec, replications=2, seed=11)
            decisions = list(scheduler.dispatch_decisions)
        assert decisions, "planned batch must log a dispatch decision"
        decision = decisions[0]
        assert decision["mode"] == "serial"
        assert decision["auto_degrade"] is True
        assert decision["projected_speedup"] < 1.0
        assert decision["requested_processes"] == 4
        assert decision["pending"] == 4  # 2 series x 2 replications
        assert decision["estimate_source"] == "default"

    @pytest.mark.parametrize("auto_degrade", [True, False])
    def test_forced_processes_bit_identical_to_serial(
        self, mini_spec, auto_degrade
    ):
        expected = run_experiment(mini_spec, replications=2, seed=11)
        forced = run_experiment(
            mini_spec,
            replications=2,
            seed=11,
            processes=4,
            auto_degrade=auto_degrade,
        )
        for label in expected.series_results:
            _assert_sets_identical(
                forced.series_results[label], expected.series_results[label]
            )

    def test_disabled_auto_degrade_keeps_pool(self, mini_spec):
        with ReplicationScheduler(processes=4, auto_degrade=False) as scheduler:
            scheduler.run_experiment(mini_spec, replications=1, seed=3)
            decisions = list(scheduler.dispatch_decisions)
        assert decisions
        assert decisions[0]["mode"] == "parallel"
        assert decisions[0]["auto_degrade"] is False

    def test_decisions_surface_in_telemetry(self, mini_spec):
        with ReplicationScheduler(processes=4) as scheduler:
            scheduler.run_experiment(mini_spec, replications=1, seed=3)
            tele = scheduler.telemetry()
        assert tele["scheduler"]["auto_degrade"] is True
        assert tele["scheduler"]["dispatch_decisions"] == (
            scheduler.dispatch_decisions
        )

    def test_serial_and_external_pools_skip_planning(self, mini_spec):
        with ReplicationScheduler(processes=1) as scheduler:
            scheduler.run_experiment(mini_spec, replications=1, seed=3)
            assert scheduler.dispatch_decisions == []


class TestFullyCachedBatch:
    """A batch whose every job is a cache hit must never start a pool.

    This is the frontier re-run case: a repeated bisection resolves all
    of its probes from the result cache, so paying pool spin-up (or even
    running the cost model) would be pure waste.  The decision trail
    still records one ``cached`` entry per batch so the manifest shows
    why no workers ran.
    """

    def test_cached_rerun_never_starts_pool(
        self, mini_scenario, tmp_path, monkeypatch
    ):
        from repro.core import parallel as parallel_module

        cache = ResultCache(tmp_path / "cache")
        with ReplicationScheduler(processes=1, cache=cache) as scheduler:
            scheduler.replicate(mini_scenario, replications=3, seed=5)

        def _no_pool(self):
            raise AssertionError("pool started on a fully cached batch")

        monkeypatch.setattr(
            parallel_module.WorkerPool, "_ensure_pool", _no_pool
        )
        with ReplicationScheduler(
            processes=4, cache=cache, auto_degrade=False
        ) as scheduler:
            scheduler.replicate(mini_scenario, replications=3, seed=5)
            assert scheduler.stats.cache_hits == 3
            assert scheduler.stats.executed == 0
            decisions = list(scheduler.dispatch_decisions)
        assert decisions, "the cached batch must still log its decision"
        decision = decisions[-1]
        assert decision["mode"] == "cached"
        assert decision["pending"] == 0
        assert decision["effective_workers"] == 0
        assert decision["projected_speedup"] is None

    def test_partial_cache_hit_still_dispatches(self, mini_scenario, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        with ReplicationScheduler(processes=1, cache=cache) as scheduler:
            scheduler.replicate(mini_scenario, replications=2, seed=5)
        with ReplicationScheduler(processes=4, cache=cache) as scheduler:
            scheduler.replicate(mini_scenario, replications=4, seed=5)
            assert scheduler.stats.cache_hits == 2
            assert scheduler.stats.executed == 2
            decisions = list(scheduler.dispatch_decisions)
        assert decisions[-1]["mode"] in ("serial", "parallel")
        assert decisions[-1]["pending"] == 2

    def test_empty_pool_batch_returns_without_start(self):
        from repro.core.parallel import WorkerPool

        pool = WorkerPool(4)
        try:
            assert list(pool.imap_indexed([], job_count=0)) == []
            assert list(pool.imap_indexed_timed([], job_count=0)) == []
            assert not pool.started
        finally:
            pool.close()
