"""Campaign checkpoint/resume: atomic snapshots and cache reconciliation."""

from __future__ import annotations

import json

import pytest

from repro.core import (
    NetworkParameters,
    ResultCache,
    ScenarioConfig,
    UserParameters,
    VirusParameters,
    result_key,
)
from repro.experiments import ReplicationScheduler
from repro.resilience import (
    CHECKPOINT_SCHEMA_VERSION,
    CampaignCheckpoint,
    default_checkpoint_path,
    load_checkpoint,
    load_checkpoint_report,
)


@pytest.fixture
def mini_scenario() -> ScenarioConfig:
    return ScenarioConfig(
        name="ckpt-mini",
        virus=VirusParameters(
            name="ckpt-virus", min_send_interval=0.05, extra_send_delay_mean=0.05
        ),
        network=NetworkParameters(population=60, mean_contact_list_size=8.0),
        user=UserParameters(read_delay_mean=0.1),
        duration=4.0,
    )


class TestCheckpointFile:
    def test_flush_and_load_round_trip(self, tmp_path):
        path = tmp_path / "ck.json"
        checkpoint = CampaignCheckpoint(path, label="demo")
        for key in ("a", "b", "c"):
            checkpoint.record(key)
        checkpoint.flush()
        assert load_checkpoint(path) == ["a", "b", "c"]
        header = json.loads(path.read_text().splitlines()[0])
        assert header["checkpoint_schema"] == CHECKPOINT_SCHEMA_VERSION
        assert header["label"] == "demo"

    def test_later_flushes_append_batches(self, tmp_path):
        path = tmp_path / "ck.json"
        checkpoint = CampaignCheckpoint(path, label="demo")
        checkpoint.record("a")
        checkpoint.flush()
        checkpoint.record("b")
        checkpoint.record("c")
        checkpoint.flush()
        lines = path.read_text().splitlines()
        assert len(lines) == 3  # header + first batch + appended batch
        assert json.loads(lines[2])["completed"] == ["b", "c"]
        assert load_checkpoint(path) == ["a", "b", "c"]

    def test_legacy_v1_snapshot_still_loads(self, tmp_path):
        path = tmp_path / "ck.json"
        path.write_text(
            json.dumps({"checkpoint_schema": 1, "label": "old",
                        "completed": ["a", "b"]})
        )
        assert load_checkpoint(path) == ["a", "b"]
        report = load_checkpoint_report(path)
        assert report.legacy and not report.torn_line
        # A resume from the legacy file rewrites in the current format.
        resumed = CampaignCheckpoint(path, label="old", resume=True)
        resumed.record("c")
        resumed.flush()
        assert load_checkpoint(path) == ["a", "b", "c"]
        header = json.loads(path.read_text().splitlines()[0])
        assert header["checkpoint_schema"] == CHECKPOINT_SCHEMA_VERSION

    def test_torn_trailing_line_skipped_and_reported(self, tmp_path):
        path = tmp_path / "ck.json"
        checkpoint = CampaignCheckpoint(path)
        checkpoint.record("a")
        checkpoint.flush()
        checkpoint.record("b")
        checkpoint.flush()
        # Crash mid-append: the final batch line is truncated.
        torn = path.read_text()[:-5]
        path.write_text(torn)
        report = load_checkpoint_report(path)
        assert report.torn_line
        assert report.keys == ["a"]  # everything before the tear survives
        resumed = CampaignCheckpoint(path, resume=True)
        assert resumed.load_torn_line
        assert resumed.previously_completed == {"a"}
        # The resumed campaign must not append after the torn tail — the
        # next flush rewrites the file whole, healing it.
        resumed.record("c")
        resumed.flush()
        healed = load_checkpoint_report(path)
        assert not healed.torn_line
        assert set(healed.keys) == {"a", "c"}

    def test_mid_file_garbage_is_unusable(self, tmp_path):
        path = tmp_path / "ck.json"
        header = json.dumps(
            {"checkpoint_schema": CHECKPOINT_SCHEMA_VERSION, "label": ""}
        )
        path.write_text(
            header + "\n" + '{"completed": ["a"'
            + "\n" + json.dumps({"completed": ["b"]}) + "\n"
        )
        # The damaged line is NOT the tail, so the file is untrustworthy.
        assert load_checkpoint(path) is None

    def test_interval_flushes_periodically(self, tmp_path):
        path = tmp_path / "ck.json"
        checkpoint = CampaignCheckpoint(path, interval=3)
        checkpoint.record("a")
        checkpoint.record("b")
        assert not path.exists()  # below the interval, nothing on disk yet
        checkpoint.record("c")
        assert path.exists()
        assert checkpoint.flushes == 1
        # Duplicate records are idempotent and don't dirty the snapshot.
        checkpoint.record("a")
        assert checkpoint.flush() is None

    def test_damaged_checkpoint_treated_as_empty(self, tmp_path):
        path = tmp_path / "ck.json"
        path.write_text('{"checkpoint_schema": 1, "completed": ["a", "b"')
        assert load_checkpoint(path) is None
        resumed = CampaignCheckpoint(path, resume=True)
        assert resumed.previously_completed == frozenset()

    def test_wrong_schema_and_shape_rejected(self, tmp_path):
        path = tmp_path / "ck.json"
        path.write_text(json.dumps({"checkpoint_schema": 99, "completed": []}))
        assert load_checkpoint(path) is None
        path.write_text(json.dumps({"checkpoint_schema": 1, "completed": [1]}))
        assert load_checkpoint(path) is None
        assert load_checkpoint(tmp_path / "missing.json") is None

    def test_resume_loads_previous_progress(self, tmp_path):
        path = tmp_path / "ck.json"
        first = CampaignCheckpoint(path, label="demo")
        first.record("a")
        first.flush()
        resumed = CampaignCheckpoint(path, label="demo", resume=True)
        assert resumed.previously_completed == {"a"}
        resumed.record("b")
        resumed.flush()
        assert load_checkpoint(path) == ["a", "b"]

    def test_reconcile_splits_resumed_lost_fresh(self, tmp_path):
        path = tmp_path / "ck.json"
        checkpoint = CampaignCheckpoint(path, interval=1)
        for key in ("a", "b"):
            checkpoint.record(key)
        checkpoint.flush()
        resumed = CampaignCheckpoint(path, resume=True)
        report = resumed.reconcile(["a", "b", "c"], [True, False, False])
        assert report.previously_completed == 2
        assert report.resumed_from_cache == 1
        assert report.lost_entries == 1  # recorded done but gone from cache
        assert report.fresh == 1
        assert "1 lost" in report.format()
        with pytest.raises(ValueError):
            resumed.reconcile(["a"], [True, False])

    def test_reconcile_empty_cache_marks_everything_lost(self, tmp_path):
        """Every checkpointed key whose cache entry vanished is 'lost'."""
        path = tmp_path / "ck.json"
        checkpoint = CampaignCheckpoint(path, interval=1)
        for key in ("a", "b", "c"):
            checkpoint.record(key)
        checkpoint.flush()
        resumed = CampaignCheckpoint(path, resume=True)
        report = resumed.reconcile(["a", "b", "c"], [False, False, False])
        assert report.previously_completed == 3
        assert report.resumed_from_cache == 0
        assert report.lost_entries == 3
        assert report.fresh == 0

    def test_reconcile_duplicate_job_keys_counted_per_occurrence(self, tmp_path):
        """A key requested twice (shared-config series) counts twice."""
        path = tmp_path / "ck.json"
        checkpoint = CampaignCheckpoint(path, interval=1)
        checkpoint.record("a")
        checkpoint.flush()
        resumed = CampaignCheckpoint(path, resume=True)
        report = resumed.reconcile(
            ["a", "a", "b", "b"], [True, True, False, False]
        )
        assert report.previously_completed == 2
        assert report.resumed_from_cache == 2
        assert report.lost_entries == 0
        assert report.fresh == 2

    def test_reconcile_swept_entries_split_exactly(self, tmp_path):
        """A mixed sweep: some entries present, some gone, some fresh."""
        path = tmp_path / "ck.json"
        checkpoint = CampaignCheckpoint(path, interval=1)
        for key in ("a", "b", "c", "d"):
            checkpoint.record(key)
        checkpoint.flush()
        resumed = CampaignCheckpoint(path, resume=True)
        # b and d were swept from the cache; e/f were never completed.
        report = resumed.reconcile(
            ["a", "b", "c", "d", "e", "f"],
            [True, False, True, False, False, False],
        )
        assert report.previously_completed == 4
        assert report.resumed_from_cache == 2
        assert report.lost_entries == 2
        assert report.fresh == 2
        assert report.to_dict() == {
            "previously_completed": 4,
            "resumed_from_cache": 2,
            "lost_entries": 2,
            "fresh": 2,
        }

    def test_reconcile_empty_job_list(self, tmp_path):
        path = tmp_path / "ck.json"
        checkpoint = CampaignCheckpoint(path, interval=1)
        checkpoint.record("a")
        checkpoint.flush()
        resumed = CampaignCheckpoint(path, resume=True)
        report = resumed.reconcile([], [])
        assert report.to_dict() == {
            "previously_completed": 0,
            "resumed_from_cache": 0,
            "lost_entries": 0,
            "fresh": 0,
        }

    def test_default_path_sanitizes_label(self, tmp_path):
        path = default_checkpoint_path(tmp_path, "figure:fig1,fig2")
        assert path.parent == tmp_path / "checkpoints"
        assert path.name == "figure-fig1-fig2.json"
        assert default_checkpoint_path(tmp_path, "").name == "campaign.json"


class TestSchedulerResume:
    """Kill-and-resume: a second scheduler re-executes only the missing
    replications, verified through the cache hit statistics."""

    def test_resume_runs_only_missing_work(self, mini_scenario, tmp_path):
        cache_root = tmp_path / "cache"
        ck_path = default_checkpoint_path(cache_root, "resume-test")

        # First campaign "dies" after 2 of 4 replications: simulate by
        # running only the first two jobs, then abandoning the scheduler.
        cache = ResultCache(cache_root)
        with ReplicationScheduler(
            cache=cache,
            checkpoint=CampaignCheckpoint(ck_path, label="resume-test"),
        ) as scheduler:
            partial = scheduler.replicate(mini_scenario, replications=2, seed=5)
        assert partial.replications == 2
        assert load_checkpoint(ck_path) is not None

        # Resumed campaign asks for all 4.
        resumed_cache = ResultCache(cache_root)
        with ReplicationScheduler(
            cache=resumed_cache,
            checkpoint=CampaignCheckpoint(
                ck_path, label="resume-test", resume=True
            ),
        ) as scheduler:
            full = scheduler.replicate(mini_scenario, replications=4, seed=5)
            totals = scheduler.resume_totals
        assert full.replications == 4
        # Cache hit stats prove only the 2 missing replications executed.
        assert resumed_cache.hits == 2
        assert resumed_cache.misses == 2
        assert scheduler.stats.executed == 2
        assert totals == {
            "previously_completed": 2,
            "resumed_from_cache": 2,
            "lost_entries": 0,
            "fresh": 2,
        }
        # And the resume split lands in the manifest telemetry.
        section = scheduler.resilience_telemetry()
        assert section is not None
        assert section["resume"] == totals

    def test_lost_cache_entry_is_rerun(self, mini_scenario, tmp_path):
        cache_root = tmp_path / "cache"
        ck_path = default_checkpoint_path(cache_root, "lost-test")
        cache = ResultCache(cache_root)
        with ReplicationScheduler(
            cache=cache,
            checkpoint=CampaignCheckpoint(ck_path, label="lost-test"),
        ) as scheduler:
            first = scheduler.replicate(mini_scenario, replications=3, seed=5)
        # One entry vanishes (disk cleanup, corruption, ...).
        victim = cache._path_for(result_key(mini_scenario, 5, 1))
        victim.unlink()
        resumed_cache = ResultCache(cache_root)
        with ReplicationScheduler(
            cache=resumed_cache,
            checkpoint=CampaignCheckpoint(
                ck_path, label="lost-test", resume=True
            ),
        ) as scheduler:
            again = scheduler.replicate(mini_scenario, replications=3, seed=5)
            totals = scheduler.resume_totals
        assert totals == {
            "previously_completed": 3,
            "resumed_from_cache": 2,
            "lost_entries": 1,
            "fresh": 0,
        }
        # The re-run replication is bit-identical to the original.
        assert [r.infection_times for r in again.results] == [
            r.infection_times for r in first.results
        ]
