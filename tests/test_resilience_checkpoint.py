"""Campaign checkpoint/resume: atomic snapshots and cache reconciliation."""

from __future__ import annotations

import json

import pytest

from repro.core import (
    NetworkParameters,
    ResultCache,
    ScenarioConfig,
    UserParameters,
    VirusParameters,
    result_key,
)
from repro.experiments import ReplicationScheduler
from repro.resilience import (
    CHECKPOINT_SCHEMA_VERSION,
    CampaignCheckpoint,
    default_checkpoint_path,
    load_checkpoint,
)


@pytest.fixture
def mini_scenario() -> ScenarioConfig:
    return ScenarioConfig(
        name="ckpt-mini",
        virus=VirusParameters(
            name="ckpt-virus", min_send_interval=0.05, extra_send_delay_mean=0.05
        ),
        network=NetworkParameters(population=60, mean_contact_list_size=8.0),
        user=UserParameters(read_delay_mean=0.1),
        duration=4.0,
    )


class TestCheckpointFile:
    def test_flush_and_load_round_trip(self, tmp_path):
        path = tmp_path / "ck.json"
        checkpoint = CampaignCheckpoint(path, label="demo")
        for key in ("a", "b", "c"):
            checkpoint.record(key)
        checkpoint.flush()
        assert load_checkpoint(path) == ["a", "b", "c"]
        document = json.loads(path.read_text())
        assert document["checkpoint_schema"] == CHECKPOINT_SCHEMA_VERSION
        assert document["label"] == "demo"

    def test_interval_flushes_periodically(self, tmp_path):
        path = tmp_path / "ck.json"
        checkpoint = CampaignCheckpoint(path, interval=3)
        checkpoint.record("a")
        checkpoint.record("b")
        assert not path.exists()  # below the interval, nothing on disk yet
        checkpoint.record("c")
        assert path.exists()
        assert checkpoint.flushes == 1
        # Duplicate records are idempotent and don't dirty the snapshot.
        checkpoint.record("a")
        assert checkpoint.flush() is None

    def test_damaged_checkpoint_treated_as_empty(self, tmp_path):
        path = tmp_path / "ck.json"
        path.write_text('{"checkpoint_schema": 1, "completed": ["a", "b"')
        assert load_checkpoint(path) is None
        resumed = CampaignCheckpoint(path, resume=True)
        assert resumed.previously_completed == frozenset()

    def test_wrong_schema_and_shape_rejected(self, tmp_path):
        path = tmp_path / "ck.json"
        path.write_text(json.dumps({"checkpoint_schema": 99, "completed": []}))
        assert load_checkpoint(path) is None
        path.write_text(json.dumps({"checkpoint_schema": 1, "completed": [1]}))
        assert load_checkpoint(path) is None
        assert load_checkpoint(tmp_path / "missing.json") is None

    def test_resume_loads_previous_progress(self, tmp_path):
        path = tmp_path / "ck.json"
        first = CampaignCheckpoint(path, label="demo")
        first.record("a")
        first.flush()
        resumed = CampaignCheckpoint(path, label="demo", resume=True)
        assert resumed.previously_completed == {"a"}
        resumed.record("b")
        resumed.flush()
        assert load_checkpoint(path) == ["a", "b"]

    def test_reconcile_splits_resumed_lost_fresh(self, tmp_path):
        path = tmp_path / "ck.json"
        checkpoint = CampaignCheckpoint(path, interval=1)
        for key in ("a", "b"):
            checkpoint.record(key)
        checkpoint.flush()
        resumed = CampaignCheckpoint(path, resume=True)
        report = resumed.reconcile(["a", "b", "c"], [True, False, False])
        assert report.previously_completed == 2
        assert report.resumed_from_cache == 1
        assert report.lost_entries == 1  # recorded done but gone from cache
        assert report.fresh == 1
        assert "1 lost" in report.format()
        with pytest.raises(ValueError):
            resumed.reconcile(["a"], [True, False])

    def test_default_path_sanitizes_label(self, tmp_path):
        path = default_checkpoint_path(tmp_path, "figure:fig1,fig2")
        assert path.parent == tmp_path / "checkpoints"
        assert path.name == "figure-fig1-fig2.json"
        assert default_checkpoint_path(tmp_path, "").name == "campaign.json"


class TestSchedulerResume:
    """Kill-and-resume: a second scheduler re-executes only the missing
    replications, verified through the cache hit statistics."""

    def test_resume_runs_only_missing_work(self, mini_scenario, tmp_path):
        cache_root = tmp_path / "cache"
        ck_path = default_checkpoint_path(cache_root, "resume-test")

        # First campaign "dies" after 2 of 4 replications: simulate by
        # running only the first two jobs, then abandoning the scheduler.
        cache = ResultCache(cache_root)
        with ReplicationScheduler(
            cache=cache,
            checkpoint=CampaignCheckpoint(ck_path, label="resume-test"),
        ) as scheduler:
            partial = scheduler.replicate(mini_scenario, replications=2, seed=5)
        assert partial.replications == 2
        assert load_checkpoint(ck_path) is not None

        # Resumed campaign asks for all 4.
        resumed_cache = ResultCache(cache_root)
        with ReplicationScheduler(
            cache=resumed_cache,
            checkpoint=CampaignCheckpoint(
                ck_path, label="resume-test", resume=True
            ),
        ) as scheduler:
            full = scheduler.replicate(mini_scenario, replications=4, seed=5)
            totals = scheduler.resume_totals
        assert full.replications == 4
        # Cache hit stats prove only the 2 missing replications executed.
        assert resumed_cache.hits == 2
        assert resumed_cache.misses == 2
        assert scheduler.stats.executed == 2
        assert totals == {
            "previously_completed": 2,
            "resumed_from_cache": 2,
            "lost_entries": 0,
            "fresh": 2,
        }
        # And the resume split lands in the manifest telemetry.
        section = scheduler.resilience_telemetry()
        assert section is not None
        assert section["resume"] == totals

    def test_lost_cache_entry_is_rerun(self, mini_scenario, tmp_path):
        cache_root = tmp_path / "cache"
        ck_path = default_checkpoint_path(cache_root, "lost-test")
        cache = ResultCache(cache_root)
        with ReplicationScheduler(
            cache=cache,
            checkpoint=CampaignCheckpoint(ck_path, label="lost-test"),
        ) as scheduler:
            first = scheduler.replicate(mini_scenario, replications=3, seed=5)
        # One entry vanishes (disk cleanup, corruption, ...).
        victim = cache._path_for(result_key(mini_scenario, 5, 1))
        victim.unlink()
        resumed_cache = ResultCache(cache_root)
        with ReplicationScheduler(
            cache=resumed_cache,
            checkpoint=CampaignCheckpoint(
                ck_path, label="lost-test", resume=True
            ),
        ) as scheduler:
            again = scheduler.replicate(mini_scenario, replications=3, seed=5)
            totals = scheduler.resume_totals
        assert totals == {
            "previously_completed": 3,
            "resumed_from_cache": 2,
            "lost_entries": 1,
            "fresh": 0,
        }
        # The re-run replication is bit-identical to the original.
        assert [r.infection_times for r in again.results] == [
            r.infection_times for r in first.results
        ]
