"""Tests for the structured tracer."""

from __future__ import annotations

from repro.des import Simulator, Tracer


def test_disabled_tracer_records_nothing():
    tracer = Tracer(enabled=False)
    tracer.record(1.0, "cat", "message")
    assert len(tracer) == 0


def test_basic_recording_and_format():
    tracer = Tracer(enabled=True)
    tracer.record(1.5, "send", "phone sent message", phone=3)
    assert len(tracer) == 1
    record = tracer.records[0]
    assert record.time == 1.5
    assert record.category == "send"
    assert "phone=3" in record.format()
    assert "send" in tracer.format()


def test_category_filter():
    tracer = Tracer(enabled=True, categories=["infect"])
    tracer.record(1.0, "send", "skip me")
    tracer.record(2.0, "infect", "keep me")
    assert [r.category for r in tracer] == ["infect"]
    assert len(tracer.by_category("infect")) == 1
    assert tracer.by_category("send") == []


def test_time_window_filter():
    tracer = Tracer(enabled=True, start_time=10.0, end_time=20.0)
    tracer.record(5.0, "x", "early")
    tracer.record(15.0, "x", "inside")
    tracer.record(25.0, "x", "late")
    assert [r.message for r in tracer] == ["inside"]


def test_max_records_drops_and_counts():
    tracer = Tracer(enabled=True, max_records=2)
    for i in range(5):
        tracer.record(float(i), "x", f"m{i}")
    assert len(tracer) == 2
    assert tracer.dropped == 3
    assert "3 records dropped" in tracer.format()


def test_clear():
    tracer = Tracer(enabled=True)
    tracer.record(1.0, "x", "m")
    tracer.clear()
    assert len(tracer) == 0
    assert tracer.dropped == 0


def test_simulator_records_labelled_events():
    tracer = Tracer(enabled=True)
    sim = Simulator(tracer)
    sim.schedule(1.0, lambda: None, label="tick")
    sim.schedule(2.0, lambda: None)  # unlabelled: not traced
    sim.run()
    assert [r.message for r in tracer] == ["tick"]
    assert tracer.records[0].time == 1.0
