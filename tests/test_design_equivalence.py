"""Differential equivalence: DSL designs vs the frozen legacy builders.

The declarative designs in ``repro.design.library`` replaced the
hand-written figure builders; ``legacy_figures.py`` freezes the last
pre-DSL version of those builders verbatim.  For every one of the ten
registry experiments this suite proves the replacement is *exact*:

- same series labels, in the same order;
- same scenario configurations (dataclass equality AND canonical-JSON
  cache identity);
- same experiment metadata (title, paper ref, checkpoints, engine,
  replication default, number of shape checks);
- same flattened scheduler job list — same cache keys, same order (and
  therefore the same multiset after a canonical sort);
- the compiled (dedup-aware) job list requests exactly the legacy jobs.

If one of these fails, ``repro-sim figure`` output is no longer
byte-for-byte what it was before the DSL landed.
"""

from __future__ import annotations

import json

import pytest

import legacy_figures
from repro.core.cache import result_key
from repro.core.serialization import scenario_to_dict
from repro.design.compile import compile_design
from repro.design.library import (
    DESIGN_FACTORIES,
    EXTENSION_IDS,
    build,
    design_ids,
)
from repro.experiments.registry import experiment_ids, get_experiment
from repro.experiments.scheduler import flatten_experiment

#: Legacy (frozen) builder per experiment id.
LEGACY_FACTORIES = {
    "fig1": legacy_figures.fig1,
    "fig2": legacy_figures.fig2,
    "fig3": legacy_figures.fig3,
    "fig4": legacy_figures.fig4,
    "fig5": legacy_figures.fig5,
    "fig6": legacy_figures.fig6,
    "fig7": legacy_figures.fig7,
    "blacklist-slow": legacy_figures.text_blacklist_slow,
    "combo": legacy_figures.combined_defenses,
    "scaling2000": legacy_figures.scaling2000,
}

ALL_IDS = sorted(LEGACY_FACTORIES)


def canonical(config) -> str:
    """The scenario's canonical JSON — its cache identity."""
    return json.dumps(scenario_to_dict(config), sort_keys=True, separators=(",", ":"))


def test_legacy_freeze_covers_the_whole_registry():
    # Extensions (e.g. "hybrid") postdate the pre-DSL builders, so there
    # is nothing frozen to compare them against; the paper's artifact set
    # must stay exactly covered.
    paper_ids = set(experiment_ids()) - EXTENSION_IDS
    assert sorted(LEGACY_FACTORIES) == sorted(paper_ids)
    assert sorted(LEGACY_FACTORIES) == sorted(set(design_ids()) - EXTENSION_IDS)
    assert EXTENSION_IDS <= set(design_ids())


@pytest.mark.parametrize("experiment_id", ALL_IDS)
def test_series_labels_and_order_match(experiment_id):
    legacy = LEGACY_FACTORIES[experiment_id]()
    spec = build(experiment_id)
    assert [s.label for s in spec.series] == [s.label for s in legacy.series]


@pytest.mark.parametrize("experiment_id", ALL_IDS)
def test_series_scenarios_match(experiment_id):
    legacy = LEGACY_FACTORIES[experiment_id]()
    spec = build(experiment_id)
    for new_series, legacy_series in zip(spec.series, legacy.series):
        assert new_series.scenario == legacy_series.scenario, new_series.label
        assert canonical(new_series.scenario) == canonical(legacy_series.scenario)


@pytest.mark.parametrize("experiment_id", ALL_IDS)
def test_metadata_matches(experiment_id):
    legacy = LEGACY_FACTORIES[experiment_id]()
    spec = build(experiment_id)
    assert spec.experiment_id == legacy.experiment_id
    assert spec.title == legacy.title
    assert spec.paper_ref == legacy.paper_ref
    assert spec.description == legacy.description
    assert spec.checkpoints == legacy.checkpoints
    assert spec.default_replications == legacy.default_replications
    assert spec.engine == legacy.engine
    assert len(spec.shape_checks) == len(legacy.shape_checks)


@pytest.mark.parametrize("experiment_id", ALL_IDS)
@pytest.mark.parametrize("seed", (0, 11))
def test_flattened_job_lists_match(experiment_id, seed):
    legacy = LEGACY_FACTORIES[experiment_id]()
    spec = get_experiment(experiment_id)
    legacy_jobs = flatten_experiment(legacy, replications=2, seed=seed)
    new_jobs = flatten_experiment(spec, replications=2, seed=seed)
    legacy_keys = [result_key(j.config, j.seed, j.replication) for j in legacy_jobs]
    new_keys = [result_key(j.config, j.seed, j.replication) for j in new_jobs]
    assert new_keys == legacy_keys
    assert sorted(new_keys) == sorted(legacy_keys)


@pytest.mark.parametrize("experiment_id", ALL_IDS)
def test_compiled_jobs_request_exactly_the_legacy_jobs(experiment_id):
    legacy = LEGACY_FACTORIES[experiment_id]()
    compiled = compile_design(DESIGN_FACTORIES[experiment_id](), replications=2, seed=3)
    legacy_jobs = flatten_experiment(legacy, replications=2, seed=3)
    legacy_keys = [result_key(j.config, j.seed, j.replication) for j in legacy_jobs]
    compiled_keys = [
        result_key(j.config, j.seed, j.replication) for j in compiled.jobs
    ]
    # The paper grids contain no duplicate configurations, so the
    # deduplicated job list IS the legacy job list, key for key.
    assert compiled_keys == legacy_keys
    assert compiled.dedup_ratio == 1.0
    # The fan-out slots reconstruct every (series, replication) request.
    requested = [
        compiled_keys[index]
        for series in compiled.spec.series
        for index in compiled.slots[series.label]
    ]
    assert requested == legacy_keys


@pytest.mark.parametrize("experiment_id", ALL_IDS)
def test_registry_serves_the_design_compiled_spec(experiment_id):
    via_registry = get_experiment(experiment_id)
    via_design = build(experiment_id)
    assert via_registry.series == via_design.series
    assert via_registry.design is not None
    assert via_registry.design.experiment_id == experiment_id
