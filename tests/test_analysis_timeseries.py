"""Tests for step-curve time series."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import CurveBand, StepCurve, aggregate_curves, time_grid


def simple_curve() -> StepCurve:
    return StepCurve([(0.0, 0.0), (1.0, 2.0), (3.0, 5.0)])


class TestStepCurve:
    def test_right_continuous_evaluation(self):
        curve = simple_curve()
        assert curve.value_at(0.0) == 0.0
        assert curve.value_at(0.99) == 0.0
        assert curve.value_at(1.0) == 2.0
        assert curve.value_at(2.5) == 2.0
        assert curve.value_at(3.0) == 5.0
        assert curve.value_at(100.0) == 5.0

    def test_before_first_point_clamps(self):
        curve = StepCurve([(1.0, 7.0)])
        assert curve.value_at(0.0) == 7.0

    def test_vectorised_matches_scalar(self):
        curve = simple_curve()
        times = np.linspace(0, 4, 17)
        vector = curve.values_at(times)
        scalars = [curve.value_at(float(t)) for t in times]
        assert np.allclose(vector, scalars)

    def test_from_event_times(self):
        curve = StepCurve.from_event_times([1.0, 2.0, 2.0, 5.0])
        assert curve.value_at(0.5) == 0.0
        assert curve.value_at(2.0) == 3.0
        assert curve.final_value == 4.0

    def test_constant(self):
        curve = StepCurve.constant(3.0)
        assert curve.value_at(1000.0) == 3.0

    def test_time_to_reach(self):
        curve = simple_curve()
        assert curve.time_to_reach(0.0) == 0.0
        assert curve.time_to_reach(1.0) == 1.0
        assert curve.time_to_reach(5.0) == 3.0
        assert curve.time_to_reach(6.0) is None

    def test_properties(self):
        curve = simple_curve()
        assert curve.start_time == 0.0
        assert curve.end_time == 3.0
        assert curve.final_value == 5.0
        assert curve.max_value == 5.0
        assert len(curve) == 3

    def test_increments(self):
        curve = simple_curve()
        assert curve.increments() == [(1.0, 2.0), (3.0, 3.0)]

    def test_validation(self):
        with pytest.raises(ValueError):
            StepCurve([])
        with pytest.raises(ValueError):
            StepCurve([(2.0, 1.0), (1.0, 2.0)])


class TestTimeGrid:
    def test_endpoints_included(self):
        grid = time_grid(10.0, points=11)
        assert grid[0] == 0.0
        assert grid[-1] == 10.0
        assert len(grid) == 11

    def test_validation(self):
        with pytest.raises(ValueError):
            time_grid(0.0)
        with pytest.raises(ValueError):
            time_grid(10.0, points=1)


class TestAggregation:
    def test_single_curve_band_collapses(self):
        curve = simple_curve()
        band = aggregate_curves([curve], time_grid(3.0, 7))
        assert np.allclose(band.mean, band.lower)
        assert np.allclose(band.mean, band.upper)
        assert band.replications == 1

    def test_mean_between_min_and_max(self):
        curves = [
            StepCurve([(0.0, 0.0), (1.0, float(k))]) for k in (1, 2, 3, 4)
        ]
        band = aggregate_curves(curves, time_grid(2.0, 5))
        assert band.mean[-1] == pytest.approx(2.5)
        assert band.final_mean() == pytest.approx(2.5)
        assert band.lower[-1] < 2.5 < band.upper[-1]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            aggregate_curves([], time_grid(1.0))
