"""Guards for the disabled-telemetry fast path.

The perf claim behind the pre-bound run kernels is not "telemetry off is
cheap" but "telemetry off is *zero* registry traffic": with metrics and
tracing disabled the simulator must select the plain loop kernel once per
run and never touch the :class:`~repro.obs.metrics.Metrics` registry
again — not even enabled-check no-op calls.  A counting stub makes that
claim a test instead of an eyeball estimate.
"""

from __future__ import annotations

from repro.core.model import PhoneNetworkModel
from repro.core.scenarios import baseline_scenario
from repro.des.random import StreamFactory
from repro.obs.metrics import Metrics


class CountingMetrics(Metrics):
    """Disabled registry that records every call into it."""

    def __init__(self) -> None:
        super().__init__(enabled=False)
        self.calls = 0

    def counter(self, name):
        self.calls += 1
        return super().counter(name)

    def gauge(self, name):
        self.calls += 1
        return super().gauge(name)

    def timer(self, name):
        self.calls += 1
        return super().timer(name)

    def inc(self, name, amount=1):
        self.calls += 1
        super().inc(name, amount)

    def set_gauge(self, name, value):
        self.calls += 1
        super().set_gauge(name, value)

    def gauge_max(self, name, value):
        self.calls += 1
        super().gauge_max(name, value)

    def observe(self, name, seconds):
        self.calls += 1
        super().observe(name, seconds)

    def timeit(self, name):
        self.calls += 1
        return super().timeit(name)


class TestDisabledTelemetryZeroCost:
    def test_obs_off_fig1_run_makes_zero_registry_calls(self):
        # Same scenario family as the fig1-v1 bench workload, shortened
        # so the test stays fast; the code path is identical.
        config = baseline_scenario(1, duration=48.0)
        registry = CountingMetrics()
        model = PhoneNetworkModel(
            config, StreamFactory(0).replication(0), metrics=registry
        )
        model.seed_infection()
        model.sim.run(until=config.duration)

        assert model.sim.events_fired > 100  # the run actually ran
        assert registry.calls == 0
        assert len(registry) == 0  # no instruments lazily materialised

    def test_enabled_registry_still_records(self):
        # Control: the same run with telemetry on goes through the
        # instrumented kernel and does hit the registry.
        config = baseline_scenario(1, duration=48.0)
        registry = CountingMetrics()
        registry.enabled = True
        model = PhoneNetworkModel(
            config, StreamFactory(0).replication(0), metrics=registry
        )
        model.seed_infection()
        model.sim.run(until=config.duration)

        assert registry.calls > 0
        assert registry.counter_value("des.events_fired") == model.sim.events_fired
