"""Tests for RNG streams and distribution objects."""

from __future__ import annotations

import numpy as np
import pytest

from repro.des.random import (
    Deterministic,
    Empirical,
    Exponential,
    LogNormal,
    ShiftedExponential,
    StreamFactory,
    Uniform,
    as_distribution,
)


class TestStreamFactory:
    def test_same_seed_same_sequences(self):
        a = StreamFactory(42).stream("user")
        b = StreamFactory(42).stream("user")
        assert np.allclose(a.random(100), b.random(100))

    def test_different_names_independent(self):
        factory = StreamFactory(42)
        a = factory.stream("user")
        b = factory.stream("virus")
        assert not np.allclose(a.random(100), b.random(100))

    def test_repeated_name_gives_fresh_stream(self):
        factory = StreamFactory(42)
        a = factory.stream("user")
        b = factory.stream("user")
        assert not np.allclose(a.random(100), b.random(100))

    def test_replications_are_independent_and_reproducible(self):
        root = StreamFactory(7)
        rep0a = root.replication(0).stream("x")
        rep1 = root.replication(1).stream("x")
        rep0b = StreamFactory(7).replication(0).stream("x")
        assert not np.allclose(rep0a.random(50), rep1.random(50))
        assert np.allclose(
            StreamFactory(7).replication(0).stream("x").random(50),
            rep0b.random(50),
        )

    def test_adding_draws_in_one_stream_does_not_shift_another(self):
        factory_a = StreamFactory(9)
        user_a = factory_a.stream("user")
        user_a.random(1000)  # heavy use
        virus_a = factory_a.stream("virus")

        factory_b = StreamFactory(9)
        factory_b.stream("user")  # untouched
        virus_b = factory_b.stream("virus")
        assert np.allclose(virus_a.random(50), virus_b.random(50))

    def test_negative_replication_rejected(self):
        with pytest.raises(ValueError):
            StreamFactory(1).replication(-1)


class TestDistributions:
    def setup_method(self):
        self.rng = np.random.default_rng(0)

    def test_deterministic(self):
        dist = Deterministic(2.5)
        assert dist.sample(self.rng) == 2.5
        assert dist.mean == 2.5
        assert np.all(dist.sample_many(self.rng, 10) == 2.5)

    def test_deterministic_rejects_nan(self):
        with pytest.raises(ValueError):
            Deterministic(float("nan"))

    def test_exponential_mean(self):
        dist = Exponential(3.0)
        samples = dist.sample_many(self.rng, 20000)
        assert dist.mean == 3.0
        assert abs(samples.mean() - 3.0) < 0.1
        assert np.all(samples >= 0)

    def test_exponential_rejects_nonpositive_mean(self):
        with pytest.raises(ValueError):
            Exponential(0.0)

    def test_uniform(self):
        dist = Uniform(1.0, 3.0)
        samples = dist.sample_many(self.rng, 10000)
        assert np.all((samples >= 1.0) & (samples <= 3.0))
        assert abs(samples.mean() - 2.0) < 0.05
        assert dist.mean == 2.0

    def test_uniform_rejects_inverted_bounds(self):
        with pytest.raises(ValueError):
            Uniform(3.0, 1.0)

    def test_shifted_exponential_respects_minimum(self):
        dist = ShiftedExponential(0.5, 0.25)
        samples = dist.sample_many(self.rng, 10000)
        assert np.all(samples >= 0.5)
        assert abs(samples.mean() - 0.75) < 0.02
        assert dist.mean == 0.75

    def test_shifted_exponential_degenerates_to_deterministic(self):
        dist = ShiftedExponential(0.5, 0.0)
        assert dist.sample(self.rng) == 0.5
        assert np.all(dist.sample_many(self.rng, 5) == 0.5)

    def test_shifted_exponential_rejects_negative(self):
        with pytest.raises(ValueError):
            ShiftedExponential(-1.0, 0.5)
        with pytest.raises(ValueError):
            ShiftedExponential(1.0, -0.5)

    def test_lognormal_mean(self):
        dist = LogNormal(2.0, cv=0.5)
        samples = dist.sample_many(self.rng, 50000)
        assert abs(samples.mean() - 2.0) < 0.05
        assert np.all(samples > 0)

    def test_empirical(self):
        dist = Empirical.of([1.0, 2.0, 4.0], [1.0, 1.0, 2.0])
        samples = dist.sample_many(self.rng, 10000)
        assert set(np.unique(samples)) <= {1.0, 2.0, 4.0}
        assert abs(dist.mean - (1 + 2 + 8) / 4.0) < 1e-12
        assert abs(samples.mean() - dist.mean) < 0.1

    def test_empirical_uniform_weights(self):
        dist = Empirical.of([5.0, 7.0])
        assert dist.mean == 6.0

    def test_empirical_validation(self):
        with pytest.raises(ValueError):
            Empirical.of([])
        with pytest.raises(ValueError):
            Empirical((1.0,), (1.0, 2.0))
        with pytest.raises(ValueError):
            Empirical.of([1.0], [-1.0])
        with pytest.raises(ValueError):
            Empirical.of([1.0], [0.0])

    def test_as_distribution_coerces_numbers(self):
        dist = as_distribution(4)
        assert isinstance(dist, Deterministic)
        assert dist.value == 4.0
        existing = Exponential(1.0)
        assert as_distribution(existing) is existing
        with pytest.raises(TypeError):
            as_distribution("nope")
