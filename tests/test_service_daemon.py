"""Tests for the campaign daemon: protocol framing, sharding, admission
control, manifest schema, and (``service``-marked) end-to-end runs over
the Unix socket.

The unmarked tests exercise the daemon's request methods directly --
no socket, no shard processes -- so they stay in the tier-1 budget.
The ``service``-marked tests serve a real daemon in a thread and drive
it through :class:`repro.service.ServiceClient`, including the headline
invariant: a recovered campaign's result stream is byte-identical to the
original run.  The full kill -9 soak lives in ``repro.service.soak``.
"""

from __future__ import annotations

import json
import shutil
import socket
import tempfile
import threading
from contextlib import contextmanager
from pathlib import Path

import pytest

from repro.core.parallel import run_indexed_job
from repro.core.serialization import result_to_dict

# repro.experiments must initialize before repro.design (the design
# library's factor builders import back into the experiment registry).
import repro.experiments  # noqa: F401

from repro.design.compile import compile_design
from repro.design.io import design_from_dict
from repro.obs.manifest import (
    build_manifest,
    read_manifests,
    validate_manifest,
)
from repro.service import (
    CampaignDaemon,
    PersistentQueue,
    ServiceClient,
    ServiceError,
    route_key,
)
from repro.service.__main__ import parse_kill_shard
from repro.service.protocol import (
    MAX_REQUEST_BYTES,
    ProtocolError,
    encode,
    read_line,
    read_lines,
)

#: Two jobs (one design point, two replications) at a small population:
#: fast enough for tier-1-adjacent service tests, deterministic enough
#: for byte-identity checks.
SMALL_DESIGN = {
    "design": {
        "id": "svc-test",
        "title": "service unit campaign",
        "label": "{virus}",
        "replications": 2,
    },
    "factor": [
        {"name": "virus", "levels": [1]},
        {"name": "population", "levels": [100]},
        {"name": "duration", "levels": [3.0]},
    ],
}
SMALL_SEED = 42
SMALL_JOBS = 2


def expected_result_lines(seed: int = SMALL_SEED) -> list:
    """The canonical result stream a fault-free campaign must produce."""
    compiled = compile_design(design_from_dict(SMALL_DESIGN), None, seed)
    lines = []
    for index, job in enumerate(compiled.jobs):
        _, result = run_indexed_job(
            (index, job.config, job.seed, job.replication)
        )
        lines.append(
            json.dumps(
                {"index": index, "result": result_to_dict(result)},
                sort_keys=True,
                separators=(",", ":"),
            )
        )
    return lines


# ---------------------------------------------------------------------------
# protocol framing


class TestProtocol:
    def test_encode_is_canonical(self):
        assert encode({"b": 1, "a": 2}) == b'{"a":2,"b":1}\n'

    def test_read_line_reassembles_partial_frames(self):
        left, right = socket.socketpair()
        try:
            left.sendall(b'{"op":"st')
            left.sendall(b'atus"}\n{"op":')
            buffer = bytearray()
            assert read_line(right, buffer) == {"op": "status"}
            # The tail of the second frame is still buffered.
            left.sendall(b'"drain"}\n')
            assert read_line(right, buffer) == {"op": "drain"}
        finally:
            left.close()
            right.close()

    def test_read_line_clean_eof_returns_none(self):
        left, right = socket.socketpair()
        left.close()
        try:
            assert read_line(right, bytearray()) is None
        finally:
            right.close()

    def test_read_line_mid_frame_eof_raises(self):
        left, right = socket.socketpair()
        left.sendall(b'{"op":"trunc')
        left.close()
        try:
            with pytest.raises(ProtocolError, match="mid-frame"):
                read_line(right, bytearray())
        finally:
            right.close()

    def test_read_line_rejects_bad_json_and_non_objects(self):
        for frame, match in ((b"not json\n", "bad JSON"), (b"[1,2]\n", "object")):
            left, right = socket.socketpair()
            try:
                left.sendall(frame)
                with pytest.raises(ProtocolError, match=match):
                    read_line(right, bytearray())
            finally:
                left.close()
                right.close()

    def test_read_line_oversized_buffer_rejected(self):
        left, right = socket.socketpair()
        try:
            buffer = bytearray(b"x" * (MAX_REQUEST_BYTES + 1))
            with pytest.raises(ProtocolError, match="exceeds"):
                read_line(right, buffer)
        finally:
            left.close()
            right.close()

    def test_read_lines_iterates_until_eof(self):
        left, right = socket.socketpair()
        try:
            left.sendall(encode({"n": 1}) + encode({"n": 2}))
            left.close()
            assert list(read_lines(right)) == [{"n": 1}, {"n": 2}]
        finally:
            right.close()


# ---------------------------------------------------------------------------
# shard routing


def test_route_key_is_deterministic_and_in_range():
    import hashlib

    keys = [
        hashlib.sha256(str(value).encode()).hexdigest() for value in range(100)
    ]
    for shards in (1, 2, 5):
        routes = [route_key(key, shards) for key in keys]
        assert routes == [route_key(key, shards) for key in keys]
        assert all(0 <= r < shards for r in routes)
    # With several shards the partition must actually split the space.
    assert len(set(route_key(key, 4) for key in keys)) > 1


def test_parse_kill_shard():
    assert parse_kill_shard([]) == {}
    assert parse_kill_shard(["0:1", "2:5"]) == {0: 1, 2: 5}
    with pytest.raises(SystemExit):
        parse_kill_shard(["nonsense"])


# ---------------------------------------------------------------------------
# service manifest schema


def service_section(campaign: str = "c000000") -> dict:
    return {
        "campaign": campaign,
        "recovered": False,
        "queue": {
            "pending": 0,
            "in_flight": 0,
            "torn_lines": 0,
            "bad_lines": 0,
            "segments_swept": 0,
            "replayed_records": 0,
        },
        "shards": {
            "executed": 2,
            "cache_hits": 0,
            "respawns": 0,
            "inline_fallback": 0,
            "reassigned_tasks": 0,
        },
        "requests": {"submit": 1, "status": 3},
        "prefilled_from_cache": 0,
    }


class TestServiceManifest:
    def test_valid_service_record(self):
        record = build_manifest(
            "service",
            "svc-test",
            wall_seconds=1.0,
            service=service_section(),
        )
        assert validate_manifest(record) == []

    def test_service_kind_requires_service_section(self):
        record = build_manifest("service", "svc-test", wall_seconds=1.0)
        assert any(
            "requires a service section" in problem
            for problem in validate_manifest(record)
        )

    def test_mistyped_service_fields_flagged(self):
        section = service_section()
        section["queue"]["in_flight"] = "one"
        section["shards"].pop("respawns")
        section["requests"]["submit"] = True
        record = build_manifest(
            "service", "svc-test", wall_seconds=1.0, service=section
        )
        problems = validate_manifest(record)
        assert any("queue.in_flight" in p for p in problems)
        assert any("shards.respawns" in p for p in problems)
        assert any("requests['submit']" in p for p in problems)

    def test_missing_campaign_id_flagged(self):
        section = service_section()
        del section["campaign"]
        record = build_manifest(
            "service", "svc-test", wall_seconds=1.0, service=section
        )
        assert any(
            "service.campaign" in p for p in validate_manifest(record)
        )


# ---------------------------------------------------------------------------
# admission control (daemon methods, no socket, no shard processes)


@pytest.fixture
def daemon(tmp_path):
    instance = CampaignDaemon(tmp_path / "spool", shards=1, max_queue_depth=1)
    yield instance
    instance.close()


class TestAdmission:
    def test_bad_design_rejected_at_submit(self, daemon):
        response = daemon.submit(
            {"op": "submit", "design": {"design": {}}, "seed": 1}
        )
        assert not response["ok"]
        assert "invalid design" in response["error"]

    def test_missing_design_rejected(self, daemon):
        response = daemon.submit({"op": "submit", "seed": 1})
        assert not response["ok"]

    def test_submission_admitted_and_visible_in_status(self, daemon):
        response = daemon.submit(
            {"op": "submit", "design": SMALL_DESIGN, "seed": SMALL_SEED}
        )
        assert response["ok"] and response["jobs"] == SMALL_JOBS
        campaign_id = response["id"]

        record = daemon.status(campaign_id)["campaign"]
        assert record["state"] == "queued" and record["total"] == SMALL_JOBS

        status = daemon.status()
        assert status["queue"]["depth"] == 1
        assert status["campaigns"][0]["id"] == campaign_id

    def test_queue_full_sheds_with_retry_after(self, daemon):
        assert daemon.submit(
            {"op": "submit", "design": SMALL_DESIGN, "seed": 1}
        )["ok"]
        shed = daemon.submit(
            {"op": "submit", "design": SMALL_DESIGN, "seed": 2}
        )
        assert not shed["ok"]
        assert shed["error"] == "queue-full"
        assert shed["retry_after"] >= 1.0

    def test_draining_daemon_sheds_submissions(self, daemon):
        daemon._draining = True
        shed = daemon.submit(
            {"op": "submit", "design": SMALL_DESIGN, "seed": 1}
        )
        assert not shed["ok"]
        assert shed["error"] == "draining" and "retry_after" in shed

    def test_cancel_queued_campaign(self, daemon):
        campaign_id = daemon.submit(
            {"op": "submit", "design": SMALL_DESIGN, "seed": 1}
        )["id"]
        assert daemon.cancel(campaign_id)["ok"]
        assert daemon.status(campaign_id)["campaign"]["state"] == "cancelled"
        assert not daemon.cancel(campaign_id)["ok"]  # already gone

    def test_unknown_campaign_status(self, daemon):
        assert not daemon.status("ghost")["ok"]

    def test_archived_campaign_status_from_spool(self, daemon):
        (daemon.spool / "results" / "old.jsonl").write_text(
            "", encoding="utf-8"
        )
        record = daemon.status("old")["campaign"]
        assert record["state"] == "done" and record["archived"]

    def test_requests_are_logged(self, daemon):
        daemon.status()
        daemon.submit({"op": "submit", "seed": 1})  # rejected, still logged
        ops = [
            json.loads(line)["op"]
            for line in daemon.request_log_path.read_text(
                encoding="utf-8"
            ).splitlines()
        ]
        assert ops == ["status", "submit"]
        assert daemon._request_counts == {"status": 1, "submit": 1}


# ---------------------------------------------------------------------------
# end-to-end over the socket (service tier: real shard processes)


@pytest.fixture
def service_root():
    # Unix socket paths are length-limited (~104 bytes); pytest tmp paths
    # can blow past that, so use a short-lived /tmp directory instead.
    root = Path(tempfile.mkdtemp(prefix="repro-svc-", dir="/tmp"))
    yield root
    shutil.rmtree(root, ignore_errors=True)


@contextmanager
def serving(daemon: CampaignDaemon, socket_path: Path):
    thread = threading.Thread(
        target=daemon.serve, args=(socket_path,), daemon=True
    )
    thread.start()
    client = ServiceClient(socket_path, timeout=120.0)
    client.wait_ready()
    try:
        yield client
    finally:
        try:
            client.shutdown()
        except (OSError, ServiceError, ProtocolError):
            pass
        thread.join(timeout=60.0)
        assert not thread.is_alive(), "daemon failed to shut down"


def wait_done(client: ServiceClient, campaign_id: str) -> None:
    import time

    deadline = time.time() + 120.0
    while time.time() < deadline:
        record = client.status(campaign_id)["campaign"]
        if record["state"] == "done":
            return
        assert record["state"] not in ("failed", "cancelled"), record
        time.sleep(0.05)
    raise AssertionError(f"campaign {campaign_id} never finished")


class TestCliOffline:
    """CLI service commands that need no daemon: error exit codes."""

    def test_submit_missing_design_file_exits_2(self, tmp_path, capsys):
        from repro.cli import main

        code = main(
            [
                "submit", str(tmp_path / "nope.json"),
                "--socket", str(tmp_path / "d.sock"),
            ]
        )
        assert code == 2
        assert "cannot load design" in capsys.readouterr().err

    def test_status_without_daemon_exits_2(self, tmp_path, capsys):
        from repro.cli import main

        code = main(["status", "--socket", str(tmp_path / "d.sock")])
        assert code == 2
        assert "service error" in capsys.readouterr().err

    def test_submit_unreachable_daemon_exits_2(self, tmp_path, capsys):
        from repro.cli import main

        design_file = tmp_path / "design.json"
        design_file.write_text(json.dumps(SMALL_DESIGN), encoding="utf-8")
        code = main(
            [
                "submit", str(design_file),
                "--socket", str(tmp_path / "d.sock"),
            ]
        )
        assert code == 2


@pytest.mark.service
class TestCliEndToEnd:
    def test_submit_status_and_shed_exit_codes(self, service_root, capsys):
        from repro.cli import main

        design_file = service_root / "design.json"
        design_file.write_text(json.dumps(SMALL_DESIGN), encoding="utf-8")
        socket_path = service_root / "d.sock"

        daemon = CampaignDaemon(service_root / "spool", shards=1)
        with serving(daemon, socket_path):
            code = main(
                [
                    "submit", str(design_file),
                    "--socket", str(socket_path),
                    "--seed", str(SMALL_SEED),
                ]
            )
            assert code == 0
            output = capsys.readouterr().out
            assert "admitted campaign" in output
            assert f"{SMALL_JOBS} result(s) streamed" in output

            assert main(["status", "--socket", str(socket_path)]) == 0
            status_out = capsys.readouterr().out
            assert "queue:" in status_out and "shard 0:" in status_out

        # A zero-depth daemon sheds every submission: CLI exit code 4.
        shedding = CampaignDaemon(
            service_root / "spool2", shards=1, max_queue_depth=0
        )
        with serving(shedding, socket_path):
            code = main(
                [
                    "submit", str(design_file),
                    "--socket", str(socket_path),
                    "--no-wait",
                ]
            )
            assert code == 4
            assert "retry after" in capsys.readouterr().err


@pytest.mark.service
class TestServiceEndToEnd:
    def test_submit_stream_and_byte_identity(self, service_root):
        spool = service_root / "spool"
        daemon = CampaignDaemon(spool, shards=2)
        with serving(daemon, service_root / "d.sock") as client:
            submitted = client.submit(SMALL_DESIGN, seed=SMALL_SEED)
            assert submitted["ok"] and submitted["jobs"] == SMALL_JOBS
            campaign_id = submitted["id"]

            frames = list(client.results(campaign_id))
            assert [f["index"] for f in frames] == list(range(SMALL_JOBS))
            wait_done(client, campaign_id)

            status = client.status(campaign_id)["campaign"]
            assert status["completed"] == SMALL_JOBS

        # The spooled stream is the canonical bytes a direct in-process
        # run of the same (config, seed, replication) jobs produces.
        stream = (spool / "results" / f"{campaign_id}.jsonl").read_text(
            encoding="utf-8"
        )
        assert stream.splitlines() == expected_result_lines()
        assert [
            json.dumps(f, sort_keys=True, separators=(",", ":"))
            for f in frames
        ] == expected_result_lines()

        # One schema-valid service manifest record per campaign.
        records = read_manifests(spool / "manifest.jsonl")
        assert len(records) == 1
        assert validate_manifest(records[0]) == []
        assert records[0]["service"]["campaign"] == campaign_id
        assert records[0]["service"]["shards"]["executed"] == SMALL_JOBS

    def test_recovered_campaign_resumes_byte_identically(self, service_root):
        spool = service_root / "spool"
        daemon = CampaignDaemon(spool, shards=1)
        with serving(daemon, service_root / "d.sock") as client:
            campaign_id = client.submit(SMALL_DESIGN, seed=SMALL_SEED)["id"]
            wait_done(client, campaign_id)
        reference = (spool / "results" / f"{campaign_id}.jsonl").read_bytes()

        # Forge the crash footprint a SIGKILL'd daemon leaves: the same
        # campaign claimed in the journal but never acked.  Its
        # checkpoint and cache entries are still in the spool, so the
        # rerun must reconcile instead of recompute.
        compiled = compile_design(
            design_from_dict(SMALL_DESIGN), None, SMALL_SEED
        )
        payload = {
            "design": SMALL_DESIGN,
            "replications": compiled.replications,
            "seed": SMALL_SEED,
            "jobs": len(compiled.jobs),
            "experiment": design_from_dict(SMALL_DESIGN).experiment_id,
        }
        with PersistentQueue(spool / "journal") as queue:
            queue.submit(payload, campaign_id=campaign_id)
            assert queue.claim().campaign_id == campaign_id

        restarted = CampaignDaemon(spool, shards=1)
        with serving(restarted, service_root / "d.sock") as client:
            status = client.status()
            assert status["queue"]["recovery"]["in_flight"] == 1
            wait_done(client, campaign_id)
            assert client.status(campaign_id)["campaign"]["recovered"]

        resumed = (spool / "results" / f"{campaign_id}.jsonl").read_bytes()
        assert resumed == reference

        records = read_manifests(spool / "manifest.jsonl")
        recovered = records[-1]
        assert recovered["service"]["recovered"] is True
        assert recovered["service"]["prefilled_from_cache"] == SMALL_JOBS
        resume = recovered["resilience"]["resume"]
        assert resume["previously_completed"] == SMALL_JOBS
        assert resume["resumed_from_cache"] == SMALL_JOBS
        assert resume["fresh"] == 0

    def test_shard_crash_respawns_and_campaign_survives(self, service_root):
        spool = service_root / "spool"
        # One shard armed to die after its first task: every job routes
        # to it, so the crash is certain and the respawn must finish the
        # campaign.
        daemon = CampaignDaemon(
            spool, shards=1, kill_after_tasks={0: 1}
        )
        with serving(daemon, service_root / "d.sock") as client:
            campaign_id = client.submit(SMALL_DESIGN, seed=SMALL_SEED)["id"]
            frames = list(client.results(campaign_id))
            wait_done(client, campaign_id)
        assert len(frames) == SMALL_JOBS

        record = read_manifests(spool / "manifest.jsonl")[-1]
        assert record["resilience"]["pool_respawns"] >= 1
        assert any(
            event["kind"] == "shard-death"
            for event in record["resilience"]["events"]
        )

    def test_cancel_drain_and_archived_replay(self, service_root):
        spool = service_root / "spool"
        daemon = CampaignDaemon(spool, shards=1, max_queue_depth=4)
        with serving(daemon, service_root / "d.sock") as client:
            first = client.submit(SMALL_DESIGN, seed=SMALL_SEED)["id"]
            second = client.submit(SMALL_DESIGN, seed=SMALL_SEED + 1)["id"]
            # The single executor runs campaigns one at a time; the
            # second is still queued and therefore cancellable.
            assert client.cancel(second)
            assert not client.cancel(second)  # idempotent rejection
            drained = client.drain()
            assert drained["ok"]
            assert client.status(first)["campaign"]["state"] == "done"
            # Draining daemons shed new work with a retry hint.
            shed = client.submit(SMALL_DESIGN, seed=7)
            assert not shed["ok"] and "retry_after" in shed

        # A fresh daemon on the same spool replays the archived stream.
        restarted = CampaignDaemon(spool, shards=1)
        with serving(restarted, service_root / "d.sock") as client:
            record = client.status(first)["campaign"]
            assert record["state"] == "done" and record.get("archived")
            frames = list(client.results(first))
        assert [
            json.dumps(f, sort_keys=True, separators=(",", ":"))
            for f in frames
        ] == expected_result_lines()
