"""Shared fixtures: small, fast scenario configurations for integration tests."""

from __future__ import annotations

import pytest

from repro.core import (
    NetworkParameters,
    ScenarioConfig,
    Targeting,
    UserParameters,
    VirusParameters,
)


@pytest.fixture
def small_network() -> NetworkParameters:
    """A 200-phone network that keeps integration tests fast."""
    return NetworkParameters(population=200, mean_contact_list_size=20.0)


@pytest.fixture
def fast_virus() -> VirusParameters:
    """An unconstrained contact-list virus that spreads within hours."""
    return VirusParameters(
        name="fast-test-virus",
        targeting=Targeting.CONTACT_LIST,
        recipients_per_message=1,
        min_send_interval=0.05,
        extra_send_delay_mean=0.05,
    )


@pytest.fixture
def small_scenario(small_network, fast_virus) -> ScenarioConfig:
    """A quick end-to-end scenario: ~1–2 seconds to simulate."""
    return ScenarioConfig(
        name="small-test",
        virus=fast_virus,
        network=small_network,
        user=UserParameters(read_delay_mean=0.2),
        duration=48.0,
    )
