"""Integration tests: the full phone-network model end to end (small scale)."""

from __future__ import annotations

import dataclasses

import pytest

from repro.core import (
    BlacklistConfig,
    GatewayScanConfig,
    ImmunizationConfig,
    LimitPeriod,
    MonitoringConfig,
    NetworkParameters,
    PhoneNetworkModel,
    ScenarioConfig,
    UserEducationConfig,
    UserParameters,
    VirusParameters,
)
from repro.core.simulation import run_scenario
from repro.des.random import StreamFactory
from repro.topology import contact_network


def test_seed_infection_picks_susceptible(small_scenario):
    model = PhoneNetworkModel(small_scenario, StreamFactory(1))
    patient_zero = model.seed_infection()
    assert model.phones[patient_zero].infected
    assert model.phones[patient_zero].susceptible
    assert model.total_infected == 1


def test_seed_infection_pinned(small_scenario):
    model = PhoneNetworkModel(small_scenario, StreamFactory(1))
    susceptible_id = next(p.phone_id for p in model.phones if p.susceptible)
    assert model.seed_infection(susceptible_id) == susceptible_id


def test_double_seed_rejected(small_scenario):
    model = PhoneNetworkModel(small_scenario, StreamFactory(1))
    model.seed_infection()
    with pytest.raises(RuntimeError):
        model.seed_infection()


def test_seed_insusceptible_rejected(small_scenario):
    model = PhoneNetworkModel(small_scenario, StreamFactory(1))
    insusceptible = next(p.phone_id for p in model.phones if not p.susceptible)
    with pytest.raises(ValueError):
        model.seed_infection(insusceptible)


def test_susceptible_count_matches_config(small_scenario):
    model = PhoneNetworkModel(small_scenario, StreamFactory(1))
    susceptible = sum(1 for p in model.phones if p.susceptible)
    assert susceptible == small_scenario.network.susceptible_count


def test_graph_population_mismatch_rejected(small_scenario):
    import numpy as np

    tiny = contact_network(10, 4.0, np.random.default_rng(0), model="random")
    with pytest.raises(ValueError):
        PhoneNetworkModel(small_scenario, StreamFactory(1), graph=tiny)


def test_virus_spreads_and_curve_monotone(small_scenario):
    result = run_scenario(small_scenario, seed=3)
    assert result.total_infected > 10
    times = result.infection_times
    assert times == sorted(times)
    assert result.counters["messages_sent"] > 0
    assert result.counters["gateway_messages_delivered"] > 0


def test_determinism_same_seed(small_scenario):
    a = run_scenario(small_scenario, seed=9)
    b = run_scenario(small_scenario, seed=9)
    assert a.infection_times == b.infection_times
    assert a.counters == b.counters


def test_different_seeds_differ(small_scenario):
    a = run_scenario(small_scenario, seed=1)
    b = run_scenario(small_scenario, seed=2)
    assert a.infection_times != b.infection_times


def test_penetration_approaches_total_acceptance(small_scenario):
    """Long-horizon unconstrained spread ⇒ penetration ≈ 0.40."""
    scenario = small_scenario.with_duration(200.0)
    result = run_scenario(scenario, seed=4)
    assert result.penetration == pytest.approx(0.40, abs=0.09)


def test_education_halves_plateau(small_scenario):
    scenario = small_scenario.with_duration(200.0)
    baseline = run_scenario(scenario, seed=4)
    educated = run_scenario(
        scenario.with_responses(UserEducationConfig(acceptance_scale=0.5)), seed=4
    )
    ratio = educated.total_infected / baseline.total_infected
    assert 0.3 <= ratio <= 0.75


def test_gateway_scan_freezes_infection(small_scenario):
    scenario = small_scenario.with_responses(GatewayScanConfig(activation_delay=1.0))
    result = run_scenario(scenario, seed=4)
    baseline = run_scenario(small_scenario, seed=4)
    assert result.total_infected < baseline.total_infected
    assert result.counters["gateway_messages_blocked"] > 0
    # After activation (+ small in-flight window), the curve is flat.
    assert result.detection_time is not None
    freeze_time = result.detection_time + 1.0 + 2.0
    late_infections = [t for t in result.infection_times if t > freeze_time]
    assert late_infections == []


def test_immunization_blocks_everything_eventually(small_scenario):
    scenario = small_scenario.with_responses(
        ImmunizationConfig(development_time=0.5, deployment_window=0.5)
    )
    result = run_scenario(scenario, seed=4)
    stats = result.response_stats["immunization"]
    assert stats["phones_immunized"] + stats["phones_quarantined"] > 0
    # No infection can occur after every patch has arrived (+ read tail).
    assert result.detection_time is not None
    patched_by = result.detection_time + 1.0
    tail = [t for t in result.infection_times if t > patched_by + 3.0]
    assert tail == []


def test_blacklist_blocks_senders(small_scenario):
    scenario = small_scenario.with_responses(BlacklistConfig(threshold=5))
    result = run_scenario(scenario, seed=4)
    assert result.response_stats["blacklist"]["phones_blacklisted"] > 0


def test_monitoring_flags_fast_sender(small_scenario):
    # Threshold low enough that the fast test virus trips it.
    scenario = small_scenario.with_responses(
        MonitoringConfig(forced_wait=1.0, window=10.0, threshold=5)
    )
    result = run_scenario(scenario, seed=4)
    baseline = run_scenario(small_scenario, seed=4)
    assert result.response_stats["monitoring"]["phones_flagged"] > 0
    # Throttled spread is slower mid-run.
    assert result.infected_at(12.0) < baseline.infected_at(12.0)


def test_reboot_limited_virus_stalls_and_resumes():
    """A reboot-limited virus must stop at its budget and resume post-reboot."""
    virus = VirusParameters(
        name="reboot-test",
        min_send_interval=0.01,
        extra_send_delay_mean=0.01,
        message_limit=5,
        limit_period=LimitPeriod.REBOOT,
        reboot_interval_mean=5.0,
    )
    network = NetworkParameters(population=50, mean_contact_list_size=10.0)
    scenario = ScenarioConfig(
        name="reboot-test",
        virus=virus,
        network=network,
        user=UserParameters(acceptance_factor=0.0),  # nobody accepts: 1 sender
        duration=50.0,
    )
    result = run_scenario(scenario, seed=0)
    # One sender, budget 5 per reboot cycle, ~10 reboots in 50 h ⇒ well
    # above 5 messages total but far below the unthrottled ~2500.
    assert result.counters["reboots"] > 0
    sent = result.counters["messages_sent"]
    assert 5 < sent < 200


def test_global_window_virus_bursts_at_boundaries():
    virus = VirusParameters(
        name="burst-test",
        recipients_per_message=100,
        min_send_interval=0.01,
        extra_send_delay_mean=0.01,
        message_limit=3,
        limit_counts_recipients=True,
        limit_period=LimitPeriod.FIXED_WINDOW,
        limit_window=10.0,
        global_limit_windows=True,
    )
    network = NetworkParameters(population=30, mean_contact_list_size=8.0)
    scenario = ScenarioConfig(
        name="burst-test",
        virus=virus,
        network=network,
        user=UserParameters(acceptance_factor=0.0),
        duration=35.0,
    )
    model = PhoneNetworkModel(scenario, StreamFactory(2))
    model.seed_infection()
    model.run()
    # Patient zero sends 3 recipient-copies per 10 h window: 4 windows
    # (0, 10, 20, 30) ⇒ 12 copies total.
    assert model.metrics.get("recipients_addressed") == 12


def test_mid_window_infection_waits_for_boundary():
    """With global windows, a phone infected mid-window sends nothing
    until the next boundary."""
    virus = VirusParameters(
        name="wait-test",
        recipients_per_message=1,
        min_send_interval=0.01,
        extra_send_delay_mean=0.0,
        message_limit=100,
        limit_period=LimitPeriod.FIXED_WINDOW,
        limit_window=10.0,
        global_limit_windows=True,
    )
    network = NetworkParameters(population=20, mean_contact_list_size=5.0)
    scenario = ScenarioConfig(
        name="wait-test",
        virus=virus,
        network=network,
        user=UserParameters(acceptance_factor=0.0),
        duration=9.0,
    )
    model = PhoneNetworkModel(scenario, StreamFactory(3))
    model.seed_infection()
    # Manually infect a second phone mid-window.
    model.sim.schedule(
        4.0,
        lambda: model._infect(
            next(p for p in model.phones if p.can_become_infected)
        ),
    )
    model.run()
    late_phone = [p for p in model.phones if p.infected and p.infection_time == 4.0]
    assert len(late_phone) == 1
    assert late_phone[0].total_messages_sent == 0  # silent until hour 10


def test_isolated_patient_zero_cannot_spread():
    """Contact-list virus with an isolated patient zero never propagates."""
    import numpy as np

    from repro.topology import ContactGraph

    graph = ContactGraph(10)
    for u in range(1, 9):
        graph.add_edge(u, u + 1)
    network = NetworkParameters(population=10, mean_contact_list_size=2.0)
    virus = VirusParameters(name="iso", min_send_interval=0.01)
    scenario = ScenarioConfig(
        name="iso", virus=virus, network=network, duration=20.0,
    )
    result = run_scenario(scenario, seed=1, graph=graph, patient_zero=0)
    assert result.total_infected == 1
    assert result.counters.get("sends_abandoned_no_contacts", 0) > 0
