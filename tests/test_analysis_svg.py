"""Tests for the SVG chart renderer."""

from __future__ import annotations

import xml.etree.ElementTree as ElementTree

import pytest

from repro.analysis import StepCurve
from repro.analysis.svg import render_curves_svg, save_curves_svg


def sample_series():
    return {
        "baseline": StepCurve([(0.0, 0.0), (50.0, 320.0)]),
        "defended": StepCurve([(0.0, 0.0), (50.0, 16.0)]),
    }


def test_output_is_wellformed_xml():
    document = render_curves_svg(sample_series(), title="Figure 2")
    root = ElementTree.fromstring(document)
    assert root.tag.endswith("svg")


def test_contains_series_polylines_and_legend():
    document = render_curves_svg(sample_series())
    assert document.count("<polyline") == 2
    assert "baseline" in document
    assert "defended" in document


def test_title_and_labels_escaped():
    series = {"a<b>&c": StepCurve.constant(1.0)}
    document = render_curves_svg(series, title='T<"&>')
    ElementTree.fromstring(document)  # would raise if unescaped
    assert "a&lt;b&gt;&amp;c" in document


def test_axis_ticks_present():
    document = render_curves_svg(sample_series(), end_time=400.0)
    # Some round tick labels must appear.
    assert ">100<" in document or ">200<" in document


def test_save_creates_file(tmp_path):
    path = save_curves_svg(
        sample_series(), tmp_path / "figs" / "fig2.svg", title="Figure 2"
    )
    assert path.exists()
    assert path.read_text().startswith("<svg")


def test_validation():
    with pytest.raises(ValueError):
        render_curves_svg({})
    with pytest.raises(ValueError):
        render_curves_svg(sample_series(), width=50)
    too_many = {f"s{i}": StepCurve.constant(1.0) for i in range(9)}
    with pytest.raises(ValueError):
        render_curves_svg(too_many)


def test_flat_zero_series_supported():
    document = render_curves_svg({"flat": StepCurve.constant(0.0)})
    ElementTree.fromstring(document)
