"""Tests for the mobility substrate (waypoint model + encounters)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mobility import (
    Leg,
    ProximityEncounterProcess,
    RandomMixingEncounters,
    WaypointMobility,
    simulate_proximity_outbreak,
)


def make_mobility(n=20, arena=100.0, seed=0) -> WaypointMobility:
    return WaypointMobility(
        num_phones=n,
        arena_size=arena,
        speed_range=(10.0, 30.0),
        pause_range=(0.0, 0.5),
        rng=np.random.default_rng(seed),
    )


class TestLeg:
    def test_position_interpolates(self):
        leg = Leg(start_time=0.0, origin=(0.0, 0.0), target=(10.0, 0.0),
                  pause=1.0, speed=5.0)
        assert leg.departure_time == 1.0
        assert leg.arrival_time == pytest.approx(3.0)
        assert leg.position(0.5) == (0.0, 0.0)          # pausing
        assert leg.position(2.0) == (5.0, 0.0)          # halfway
        assert leg.position(10.0) == (10.0, 0.0)        # arrived (clamped)

    def test_diagonal_distance(self):
        leg = Leg(0.0, (0.0, 0.0), (3.0, 4.0), pause=0.0, speed=1.0)
        assert leg.travel_distance == pytest.approx(5.0)
        assert leg.arrival_time == pytest.approx(5.0)


class TestWaypointMobility:
    def test_positions_stay_in_arena(self):
        mobility = make_mobility()
        for time in (0.0, 1.0, 5.0, 20.0, 100.0):
            points = mobility.positions(time)
            assert np.all(points >= 0.0)
            assert np.all(points <= 100.0)

    def test_positions_continuous_in_time(self):
        mobility = make_mobility(n=5)
        previous = mobility.positions(0.0)
        for step in range(1, 50):
            current = mobility.positions(step * 0.1)
            jump = np.hypot(*(current - previous).T)
            # Max speed 30 units/h x 0.1 h = 3 units per step.
            assert np.all(jump <= 3.0 + 1e-9)
            previous = current

    def test_time_monotonicity_enforced(self):
        mobility = make_mobility(n=2)
        mobility.position(0, 50.0)
        with pytest.raises(ValueError, match="monotone"):
            mobility.position(0, 0.0)

    def test_neighbors_within_radius(self):
        mobility = make_mobility(n=30, arena=10.0)  # dense arena
        neighbors = mobility.neighbors_within(0, 1.0, radius=5.0)
        own = np.asarray(mobility.position(0, 1.0))
        for other in neighbors:
            pos = np.asarray(mobility.position(other, 1.0))
            assert np.hypot(*(pos - own)) <= 5.0
        assert 0 not in neighbors

    def test_expected_contact_fraction(self):
        mobility = make_mobility(arena=100.0)
        fraction = mobility.expected_contact_fraction(radius=10.0)
        assert fraction == pytest.approx(np.pi * 100.0 / 10_000.0)
        assert mobility.expected_contact_fraction(radius=1000.0) == 1.0

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            WaypointMobility(0, 10.0, (1.0, 2.0), (0.0, 1.0), rng)
        with pytest.raises(ValueError):
            WaypointMobility(5, -1.0, (1.0, 2.0), (0.0, 1.0), rng)
        with pytest.raises(ValueError):
            WaypointMobility(5, 10.0, (0.0, 2.0), (0.0, 1.0), rng)
        with pytest.raises(ValueError):
            WaypointMobility(5, 10.0, (2.0, 1.0), (0.0, 1.0), rng)
        mobility = make_mobility()
        with pytest.raises(ValueError):
            mobility.position(99, 0.0)
        with pytest.raises(ValueError):
            mobility.neighbors_within(0, 0.0, radius=0.0)


class TestEncounters:
    def test_random_mixing_never_self(self):
        encounters = RandomMixingEncounters(10, np.random.default_rng(0))
        for _ in range(500):
            partner = encounters.partner(3, 0.0)
            assert partner is not None
            assert partner != 3
            assert 0 <= partner < 10

    def test_random_mixing_covers_population(self):
        encounters = RandomMixingEncounters(8, np.random.default_rng(1))
        seen = {encounters.partner(0, 0.0) for _ in range(500)}
        assert seen == set(range(1, 8))

    def test_proximity_partner_in_range(self):
        mobility = make_mobility(n=40, arena=20.0, seed=2)
        process = ProximityEncounterProcess(
            mobility, bluetooth_radius=6.0, rng=np.random.default_rng(3)
        )
        found_any = False
        for step in range(1, 30):
            partner = process.partner(0, step * 0.5)
            if partner is not None:
                found_any = True
                assert partner != 0
        assert found_any
        assert 0.0 <= process.contact_availability() <= 1.0

    def test_sparse_arena_fizzles(self):
        mobility = make_mobility(n=2, arena=10_000.0, seed=4)
        process = ProximityEncounterProcess(
            mobility, bluetooth_radius=1.0, rng=np.random.default_rng(5)
        )
        results = [process.partner(0, t * 1.0) for t in range(1, 20)]
        assert all(r is None for r in results)
        assert process.fizzled_attempts == 19

    def test_validation(self):
        with pytest.raises(ValueError):
            RandomMixingEncounters(1, np.random.default_rng(0))
        with pytest.raises(ValueError):
            ProximityEncounterProcess(
                make_mobility(), 0.0, np.random.default_rng(0)
            )


class TestZeroSpeedLeg:
    """Pin the degenerate zero-speed leg: parked forever, never negative."""

    def test_zero_speed_leg_never_arrives(self):
        leg = Leg(0.0, (2.0, 3.0), (9.0, 9.0), pause=0.5, speed=0.0)
        assert leg.arrival_time == np.inf
        # The phone sits at its origin for any finite query time.
        for time in (0.0, 0.5, 1.0, 1e9):
            assert leg.position(time) == (2.0, 3.0)

    def test_zero_distance_leg_arrives_instantly(self):
        leg = Leg(0.0, (4.0, 4.0), (4.0, 4.0), pause=0.25, speed=10.0)
        assert leg.arrival_time == pytest.approx(0.25)
        assert leg.position(1.0) == (4.0, 4.0)


class TestSelfExclusion:
    """Pin self-exclusion in both partner paths (satellite audit)."""

    def test_neighbors_within_excludes_self_even_when_colocated(self):
        # A tiny arena forces co-location; the querying phone must still
        # never report itself as its own neighbor.
        mobility = make_mobility(n=10, arena=0.5, seed=13)
        for phone in range(10):
            neighbors = mobility.neighbors_within(phone, 1.0, radius=5.0)
            assert phone not in neighbors
            assert len(neighbors) == 9

    def test_proximity_partner_never_self(self):
        mobility = make_mobility(n=10, arena=0.5, seed=14)
        process = ProximityEncounterProcess(
            mobility, bluetooth_radius=5.0, rng=np.random.default_rng(15)
        )
        for step in range(1, 200):
            partner = process.partner(3, step * 0.01)
            assert partner != 3


class TestProximityOutbreak:
    @staticmethod
    def always_accept(times_offered: int) -> float:
        return 1.0 if times_offered == 1 else 0.0

    def test_random_mixing_outbreak_spreads(self):
        rng = np.random.default_rng(6)
        encounters = RandomMixingEncounters(50, rng)
        times = simulate_proximity_outbreak(
            encounters,
            susceptible=[True] * 50,
            patient_zero=0,
            attempt_rate=2.0,
            acceptance_probability_fn=self.always_accept,
            horizon=48.0,
            rng=rng,
        )
        assert times[0] == 0.0
        assert len(times) > 25
        assert times == sorted(times)

    def test_locality_slows_spread(self):
        """A sparse proximity worm spreads slower than random mixing."""
        rng = np.random.default_rng(7)
        mixing = RandomMixingEncounters(40, rng)
        fast = simulate_proximity_outbreak(
            mixing, [True] * 40, 0, attempt_rate=2.0,
            acceptance_probability_fn=self.always_accept,
            horizon=24.0, rng=np.random.default_rng(8),
        )
        mobility = make_mobility(n=40, arena=300.0, seed=9)
        proximity = ProximityEncounterProcess(
            mobility, bluetooth_radius=10.0, rng=np.random.default_rng(10)
        )
        slow = simulate_proximity_outbreak(
            proximity, [True] * 40, 0, attempt_rate=2.0,
            acceptance_probability_fn=self.always_accept,
            horizon=24.0, rng=np.random.default_rng(11),
        )
        assert len(slow) < len(fast)

    def test_insusceptible_partners_never_infected(self):
        rng = np.random.default_rng(12)
        susceptible = [True] * 10 + [False] * 10
        encounters = RandomMixingEncounters(20, rng)
        times = simulate_proximity_outbreak(
            encounters, susceptible, 0, attempt_rate=3.0,
            acceptance_probability_fn=self.always_accept,
            horizon=48.0, rng=rng,
        )
        assert len(times) <= 10

    def test_validation(self):
        rng = np.random.default_rng(0)
        encounters = RandomMixingEncounters(5, rng)
        with pytest.raises(ValueError):
            simulate_proximity_outbreak(
                encounters, [False] * 5, 0, 1.0, self.always_accept, 1.0, rng
            )
        with pytest.raises(ValueError):
            simulate_proximity_outbreak(
                encounters, [True] * 5, 9, 1.0, self.always_accept, 1.0, rng
            )
        with pytest.raises(ValueError):
            simulate_proximity_outbreak(
                encounters, [True] * 5, 0, 0.0, self.always_accept, 1.0, rng
            )
        with pytest.raises(ValueError):
            simulate_proximity_outbreak(
                encounters, [True] * 5, 0, 1.0, self.always_accept, 1.0, rng,
                offers_received=[0, 0],
            )


class _AlwaysPartnerOne:
    """Scripted encounter process: every attempt finds phone 1."""

    def partner(self, phone_id: int, time: float) -> int:
        return 1 if phone_id != 1 else 0


class TestConsentCounterSemantics:
    """Regression: every received offer advances the AF/2^n counter.

    The pre-fix driver only counted offers delivered to susceptible,
    uninfected recipients, which diverges from ``repro.core``'s
    ``_receive`` — there, an infected or immune phone still receives the
    file (it lands in the inbox) and the consent series keeps decaying.
    """

    def test_insusceptible_recipient_still_advances_counter(self):
        offers = [0, 0, 0]
        times = simulate_proximity_outbreak(
            _AlwaysPartnerOne(),
            susceptible=[True, False, True],
            patient_zero=0,
            attempt_rate=2.0,
            acceptance_probability_fn=lambda n: 1.0,
            horizon=24.0,
            rng=np.random.default_rng(16),
            offers_received=offers,
        )
        assert times == [0.0]          # the immune phone never converts
        assert offers[1] > 0           # ... but its consent series advanced
        assert offers[0] == offers[2] == 0

    def test_infected_recipient_still_advances_counter(self):
        # Accept only on the exact 3rd offer: infection happens then, and
        # the counter must keep advancing for offers 4, 5, ... delivered
        # to the now-infected phone.
        offers = [0, 0]
        times = simulate_proximity_outbreak(
            _AlwaysPartnerOne(),
            susceptible=[True, True],
            patient_zero=0,
            attempt_rate=4.0,
            acceptance_probability_fn=lambda n: 1.0 if n == 3 else 0.0,
            horizon=48.0,
            rng=np.random.default_rng(17),
            offers_received=offers,
        )
        assert len(times) == 2         # phone 1 converted on offer 3
        assert offers[1] > 3           # offers after infection still count
