"""Tests for the discrete-event simulator core (clock, scheduling, run loop)."""

from __future__ import annotations

import pytest

from repro.des import (
    PRIORITY_EARLY,
    PRIORITY_LATE,
    SimulationError,
    Simulator,
)


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0
    assert sim.pending_events == 0


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule(3.0, lambda: fired.append("c"))
    sim.schedule(1.0, lambda: fired.append("a"))
    sim.schedule(2.0, lambda: fired.append("b"))
    sim.run()
    assert fired == ["a", "b", "c"]
    assert sim.now == 3.0


def test_equal_times_fire_in_priority_then_fifo_order():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: fired.append("normal1"))
    sim.schedule(1.0, lambda: fired.append("late"), priority=PRIORITY_LATE)
    sim.schedule(1.0, lambda: fired.append("early"), priority=PRIORITY_EARLY)
    sim.schedule(1.0, lambda: fired.append("normal2"))
    sim.run()
    assert fired == ["early", "normal1", "normal2", "late"]


def test_run_until_stops_clock_at_horizon():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: fired.append(1))
    sim.schedule(5.0, lambda: fired.append(5))
    end = sim.run(until=3.0)
    assert fired == [1]
    assert end == 3.0
    assert sim.now == 3.0
    # The 5.0 event is still pending and fires on a later run.
    sim.run(until=10.0)
    assert fired == [1, 5]
    # Queue drained: clock advances to the new horizon anyway.
    assert sim.now == 10.0


def test_event_exactly_at_until_fires():
    sim = Simulator()
    fired = []
    sim.schedule(3.0, lambda: fired.append("edge"))
    sim.run(until=3.0)
    assert fired == ["edge"]


def test_schedule_during_run():
    sim = Simulator()
    fired = []

    def first():
        fired.append("first")
        sim.schedule(1.0, lambda: fired.append("second"))

    sim.schedule(1.0, first)
    sim.run()
    assert fired == ["first", "second"]
    assert sim.now == 2.0


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-0.1, lambda: None)


def test_schedule_at_in_past_rejected():
    sim = Simulator()
    sim.schedule(5.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(3.0, lambda: None)


def test_run_until_in_past_rejected():
    sim = Simulator()
    sim.schedule(5.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.run(until=1.0)


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    handle = sim.schedule(1.0, lambda: fired.append("cancelled"))
    sim.schedule(2.0, lambda: fired.append("kept"))
    assert handle.cancel() is True
    assert handle.cancel() is False  # second cancel is a no-op
    sim.run()
    assert fired == ["kept"]
    assert handle.cancelled


def test_cancel_after_fire_returns_false():
    sim = Simulator()
    handle = sim.schedule(1.0, lambda: None)
    sim.run()
    assert handle.fired
    assert handle.cancel() is False


def test_pending_event_count_tracks_cancellations():
    sim = Simulator()
    handles = [sim.schedule(float(i + 1), lambda: None) for i in range(10)]
    assert sim.pending_events == 10
    for handle in handles[:4]:
        handle.cancel()
    assert sim.pending_events == 6


def test_stop_requested_from_event():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: (fired.append(1), sim.stop()))
    sim.schedule(2.0, lambda: fired.append(2))
    sim.run()
    assert fired == [1]
    assert sim.now == 1.0


def test_stop_when_predicate():
    sim = Simulator()
    fired = []
    for i in range(10):
        sim.schedule(float(i + 1), lambda i=i: fired.append(i))
    sim.run(stop_when=lambda: len(fired) >= 3)
    assert fired == [0, 1, 2]


def test_max_events():
    sim = Simulator()
    fired = []
    for i in range(10):
        sim.schedule(float(i + 1), lambda i=i: fired.append(i))
    sim.run(max_events=4)
    assert len(fired) == 4


def test_events_fired_counter():
    sim = Simulator()
    for i in range(5):
        sim.schedule(float(i), lambda: None)
    sim.run()
    assert sim.events_fired == 5


def test_step_fires_one_event():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: fired.append(1))
    sim.schedule(2.0, lambda: fired.append(2))
    assert sim.step() is True
    assert fired == [1]
    assert sim.step() is True
    assert sim.step() is False


def test_end_hooks_called_once_per_run():
    sim = Simulator()
    calls = []
    sim.add_end_hook(lambda: calls.append(sim.now))
    sim.schedule(1.0, lambda: None)
    sim.run()
    assert calls == [1.0]


def test_no_reentrant_runs():
    sim = Simulator()
    errors = []

    def nested():
        try:
            sim.run()
        except SimulationError as exc:
            errors.append(exc)

    sim.schedule(1.0, nested)
    sim.run()
    assert len(errors) == 1


def test_peek_next_time():
    sim = Simulator()
    assert sim.peek_next_time() is None
    sim.schedule(2.5, lambda: None)
    assert sim.peek_next_time() == 2.5


def test_determinism_with_same_schedule():
    def run_once():
        sim = Simulator()
        fired = []
        for i in range(50):
            sim.schedule((i * 7) % 13 * 0.1, lambda i=i: fired.append(i))
        sim.run()
        return fired

    assert run_once() == run_once()
