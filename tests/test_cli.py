"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


def test_list_command(capsys):
    assert main(["list"]) == 0
    output = capsys.readouterr().out
    for experiment_id in ("fig1", "fig7", "scaling2000"):
        assert experiment_id in output


def test_run_command_small(capsys):
    code = main(
        [
            "run",
            "--virus", "3",
            "--population", "150",
            "--duration", "6",
            "--replications", "1",
            "--no-chart",
        ]
    )
    assert code == 0
    output = capsys.readouterr().out
    assert "final infected" in output
    assert "penetration" in output


def test_run_with_response(capsys):
    code = main(
        [
            "run",
            "--virus", "3",
            "--response", "blacklist",
            "--threshold", "10",
            "--population", "150",
            "--duration", "6",
            "--replications", "1",
            "--no-chart",
        ]
    )
    assert code == 0
    assert "blacklist" in capsys.readouterr().out


def test_run_chart_rendering(capsys):
    code = main(
        [
            "run",
            "--virus", "3",
            "--population", "120",
            "--duration", "4",
            "--replications", "1",
        ]
    )
    assert code == 0
    assert "(hours)" in capsys.readouterr().out


def test_figure_unknown_id(capsys):
    assert main(["figure", "fig99"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_topology_command(tmp_path, capsys):
    out = tmp_path / "contacts.txt"
    code = main(
        [
            "topology",
            "--nodes", "80",
            "--mean-degree", "8",
            "--model", "random",
            "--out", str(out),
        ]
    )
    assert code == 0
    assert out.exists()
    header = out.read_text().splitlines()[0]
    assert header == "# contact-list v1 n=80"
    assert "mean list size" in capsys.readouterr().out


def test_every_response_option_builds():
    parser = build_parser()
    for response in ("scan", "detection", "education", "immunization",
                     "monitoring", "blacklist"):
        args = parser.parse_args(
            ["run", "--virus", "1", "--response", response]
        )
        from repro.cli import _build_response

        assert _build_response(args) is not None


def test_parser_rejects_bad_virus():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["run", "--virus", "9"])
