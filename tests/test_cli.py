"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


def test_list_command(capsys):
    assert main(["list"]) == 0
    output = capsys.readouterr().out
    for experiment_id in ("fig1", "fig7", "scaling2000"):
        assert experiment_id in output


def test_run_command_small(capsys):
    code = main(
        [
            "run",
            "--virus", "3",
            "--population", "150",
            "--duration", "6",
            "--replications", "1",
            "--no-chart",
        ]
    )
    assert code == 0
    output = capsys.readouterr().out
    assert "final infected" in output
    assert "penetration" in output


def test_run_with_response(capsys):
    code = main(
        [
            "run",
            "--virus", "3",
            "--response", "blacklist",
            "--threshold", "10",
            "--population", "150",
            "--duration", "6",
            "--replications", "1",
            "--no-chart",
        ]
    )
    assert code == 0
    assert "blacklist" in capsys.readouterr().out


def test_run_chart_rendering(capsys):
    code = main(
        [
            "run",
            "--virus", "3",
            "--population", "120",
            "--duration", "4",
            "--replications", "1",
        ]
    )
    assert code == 0
    assert "(hours)" in capsys.readouterr().out


def test_figure_unknown_id(capsys):
    assert main(["figure", "fig99"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_topology_command(tmp_path, capsys):
    out = tmp_path / "contacts.txt"
    code = main(
        [
            "topology",
            "--nodes", "80",
            "--mean-degree", "8",
            "--model", "random",
            "--out", str(out),
        ]
    )
    assert code == 0
    assert out.exists()
    header = out.read_text().splitlines()[0]
    assert header == "# contact-list v1 n=80"
    assert "mean list size" in capsys.readouterr().out


def test_every_response_option_builds():
    parser = build_parser()
    for response in ("scan", "detection", "education", "immunization",
                     "monitoring", "blacklist"):
        args = parser.parse_args(
            ["run", "--virus", "1", "--response", response]
        )
        from repro.cli import _build_response

        assert _build_response(args) is not None


def test_parser_rejects_bad_virus():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["run", "--virus", "9"])


def test_frontier_command_small(tmp_path, capsys):
    """A coarse frontier bisection end to end, manifest validated."""
    manifest_path = tmp_path / "frontier.jsonl"
    code = main(
        [
            "frontier",
            "--virus", "3",
            "--response", "blacklist",
            "--population", "300",
            "--duration", "6",
            "--low", "0",
            "--high", "8",
            "--tolerance", "8",
            "--replications", "1",
            "--no-crosscheck",
            "--no-cache",
            "--metrics", str(manifest_path),
        ]
    )
    assert code == 0
    output = capsys.readouterr().out
    assert "frontier[latency]" in output
    assert "containment: mean final" in output

    from repro.obs.manifest import read_manifests, validate_manifest

    records = read_manifests(manifest_path)
    assert len(records) == 1
    assert validate_manifest(records[0]) == []
    production = records[0]["frontier"]["production"]
    assert production["axis"] == "latency"
    assert production["probes"]
    assert "crosscheck" not in records[0]["frontier"]


def test_frontier_rollout_axis_rejects_zero_low(capsys):
    code = main(
        [
            "frontier",
            "--virus", "3",
            "--response", "blacklist",
            "--population", "300",
            "--duration", "6",
            "--axis", "rollout",
            "--low", "0",
            "--high", "8",
            "--replications", "1",
            "--no-crosscheck",
            "--no-cache",
        ]
    )
    assert code == 2
    assert "positive window" in capsys.readouterr().err


def test_frontier_parser_rejects_standing_mechanisms():
    with pytest.raises(SystemExit):
        build_parser().parse_args(
            ["frontier", "--virus", "1", "--response", "monitoring"]
        )
