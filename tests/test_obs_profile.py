"""Tests for the hot-path profiler."""

from __future__ import annotations

import pytest

from repro.obs.manifest import build_manifest, validate_manifest
from repro.obs.profile import run_profile, run_profile_xl


@pytest.fixture(scope="module")
def report():
    # Small population + hard event cap keeps the profile well under a
    # second while still exercising every code path.
    return run_profile(virus=3, population=150, max_events=4000, seed=1)


class TestRunProfile:
    def test_basic_measurements(self, report):
        assert report.scenario_name == "virus3-baseline"
        assert 0 < report.events <= 4000
        assert report.run_seconds > 0
        assert report.wall_seconds >= report.run_seconds
        assert report.events_per_second > 0
        assert report.kernel["events_fired"] == report.events
        assert report.kernel["heap_peak"] > 0

    def test_hotspots_cover_event_labels(self, report):
        assert report.hotspots, "expected at least one hot-path row"
        labels = {row["label"] for row in report.hotspots}
        assert "send" in labels
        # Rows are sorted by total time, descending.
        totals = [row["total_seconds"] for row in report.hotspots]
        assert totals == sorted(totals, reverse=True)
        # Shares partition the measured callback time.
        assert sum(row["share"] for row in report.hotspots) == pytest.approx(
            1.0, abs=0.01
        )

    def test_format_renders_breakdown(self, report):
        text = report.format(top=2)
        assert "profile: virus3-baseline" in text
        assert "ev/s under instrumentation" in text
        assert "event label" in text

    def test_manifest_sections_build_valid_record(self, report):
        record = build_manifest(
            "profile", "profile:unit", **report.manifest_sections()
        )
        assert validate_manifest(record) == []
        assert record["events_executed"] == report.events
        assert record["extra"]["hotspots"] == report.hotspots

    def test_deterministic_event_sequence(self):
        a = run_profile(virus=3, population=150, max_events=1500, seed=5)
        b = run_profile(virus=3, population=150, max_events=1500, seed=5)
        assert a.events == b.events
        assert a.final_infected == b.final_infected
        assert [r["label"] for r in a.hotspots] and [
            (r["label"], r["count"]) for r in a.hotspots
        ] == [(r["label"], r["count"]) for r in b.hotspots]


@pytest.fixture(scope="module")
def xl_report():
    # The paper-size preset (N=1000) keeps the xl profile fast while
    # every round phase still fires.
    return run_profile_xl(virus=1, preset="paper", duration=96.0, seed=2)


class TestRunProfileXL:
    def test_basic_measurements(self, xl_report):
        assert xl_report.scenario_name == "virus1-baseline-paper"
        assert xl_report.preset == "paper"
        assert xl_report.events > 0
        assert xl_report.rounds > 0
        assert xl_report.run_seconds > 0
        assert xl_report.wall_seconds >= xl_report.run_seconds
        assert xl_report.build_seconds > 0
        assert xl_report.events_per_second > 0

    def test_phases_cover_the_round_loop(self, xl_report):
        names = {row["phase"] for row in xl_report.phases}
        assert names == {
            "budget_boundaries",
            "reboots",
            "patches",
            "sends",
            "deliveries",
            "installs",
            "round_scheduling",
        }
        assert sum(row["share"] for row in xl_report.phases) == pytest.approx(
            1.0, abs=0.01
        )
        totals = [row["total_seconds"] for row in xl_report.phases]
        assert totals == sorted(totals, reverse=True)

    def test_format_renders_breakdown(self, xl_report):
        text = xl_report.format()
        assert "xl engine, preset paper" in text
        assert "round phase" in text
        assert "sends" in text

    def test_manifest_sections_build_valid_record(self, xl_report):
        record = build_manifest(
            "profile", "profile:xl-unit", **xl_report.manifest_sections()
        )
        assert validate_manifest(record) == []
        assert record["extra"]["engine"] == "xl"
        assert record["extra"]["phases"] == xl_report.phases

    def test_instrumentation_preserves_results(self, xl_report):
        # The profiled loop must be semantics-identical to the plain one.
        from repro.des.random import StreamFactory
        from repro.xl.engine import XLEngine
        from repro.xl.presets import xl_scenario

        config = xl_scenario(1, "paper", duration=96.0)
        engine = XLEngine(config, StreamFactory(2).replication(0))
        engine.seed_infection()
        engine.run()
        assert xl_report.events == int(engine.counters["events_fired"])
        assert xl_report.rounds == int(engine.counters["xl_rounds"])
        assert xl_report.final_infected == len(engine.infection_times)
