"""Property-based round-trip tests for scenario serialization."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    BlacklistConfig,
    DetectionAlgorithmConfig,
    DetectionParameters,
    GatewayScanConfig,
    ImmunizationConfig,
    LimitPeriod,
    MonitoringConfig,
    NetworkParameters,
    ScenarioConfig,
    Targeting,
    UserEducationConfig,
    UserParameters,
    VirusParameters,
)
from repro.core.serialization import scenario_from_json, scenario_to_json

positive_hours = st.floats(0.01, 100.0, allow_nan=False)


@st.composite
def virus_parameters(draw):
    limited = draw(st.booleans())
    if limited:
        limit = draw(st.integers(1, 100))
        period = draw(st.sampled_from([LimitPeriod.REBOOT, LimitPeriod.FIXED_WINDOW]))
        counts_recipients = (
            draw(st.booleans()) if period is LimitPeriod.FIXED_WINDOW else False
        )
        global_windows = (
            draw(st.booleans()) if period is LimitPeriod.FIXED_WINDOW else False
        )
    else:
        limit, period = None, LimitPeriod.NONE
        counts_recipients = global_windows = False
    return VirusParameters(
        name=draw(st.text(min_size=1, max_size=12, alphabet="abcdefgh123")),
        targeting=draw(st.sampled_from(list(Targeting))),
        recipients_per_message=draw(st.integers(1, 100)),
        min_send_interval=draw(positive_hours),
        extra_send_delay_mean=draw(st.floats(0.0, 10.0)),
        message_limit=limit,
        limit_period=period,
        limit_counts_recipients=counts_recipients,
        global_limit_windows=global_windows,
        reboot_interval_mean=draw(positive_hours),
        limit_window=draw(positive_hours),
        dormancy=draw(st.floats(0.0, 10.0)),
        valid_number_fraction=draw(st.floats(0.01, 1.0)),
        bluetooth_rate=draw(st.floats(0.0, 10.0)),
    )


@st.composite
def response_configs(draw):
    kind = draw(st.integers(0, 5))
    if kind == 0:
        return GatewayScanConfig(activation_delay=draw(st.floats(0.0, 100.0)))
    if kind == 1:
        return DetectionAlgorithmConfig(
            accuracy=draw(st.floats(0.0, 1.0)),
            analysis_period=draw(st.floats(0.0, 50.0)),
        )
    if kind == 2:
        return UserEducationConfig(acceptance_scale=draw(st.floats(0.0, 1.0)))
    if kind == 3:
        return ImmunizationConfig(
            development_time=draw(st.floats(0.0, 100.0)),
            deployment_window=draw(positive_hours),
        )
    if kind == 4:
        return MonitoringConfig(
            forced_wait=draw(positive_hours),
            window=draw(positive_hours),
            threshold=draw(st.integers(1, 100)),
        )
    return BlacklistConfig(threshold=draw(st.integers(1, 100)))


@st.composite
def scenarios(draw):
    population = draw(st.integers(10, 2000))
    return ScenarioConfig(
        name=draw(st.text(min_size=1, max_size=20, alphabet="abc-_0")),
        virus=draw(virus_parameters()),
        network=NetworkParameters(
            population=population,
            susceptible_fraction=draw(st.floats(0.1, 1.0)),
            mean_contact_list_size=draw(
                st.floats(1.0, max(1.5, population / 3.0))
            ),
            powerlaw_exponent=draw(st.floats(1.2, 3.0)),
            gateway_delay_mean=draw(st.floats(0.0, 1.0)),
        ),
        user=UserParameters(
            acceptance_factor=draw(st.floats(0.0, 1.0)),
            read_delay_mean=draw(st.floats(0.0, 10.0)),
        ),
        detection=DetectionParameters(
            detectable_infections=draw(st.integers(1, 100))
        ),
        responses=tuple(draw(st.lists(response_configs(), max_size=4))),
        duration=draw(positive_hours),
    )


@given(scenario=scenarios())
@settings(max_examples=100, deadline=None)
def test_json_round_trip_is_identity(scenario):
    restored = scenario_from_json(scenario_to_json(scenario))
    assert restored == scenario
