"""Cross-validation: the SAN-composed model vs the direct model.

Both implement the same stochastic process (contact-list virus, no budget
limits, zero read delay), so their final infection counts must agree
statistically.  This validates the production model against the Möbius-style
formalism the paper used.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    NetworkParameters,
    ScenarioConfig,
    Targeting,
    UserParameters,
    VirusParameters,
)
from repro.core.san_model import (
    build_phone_submodel,
    build_san_phone_network,
    infected_count_reward,
    run_san_phone_network,
)
from repro.core.simulation import run_scenario
from repro.des.random import StreamFactory
from repro.topology import contact_network


@pytest.fixture(scope="module")
def crossval_setup():
    streams = StreamFactory(2024)
    graph = contact_network(40, 8.0, streams.stream("topology"), model="random")
    virus = VirusParameters(
        name="xval",
        targeting=Targeting.CONTACT_LIST,
        min_send_interval=0.5,
        extra_send_delay_mean=0.5,
    )
    user = UserParameters(read_delay_mean=0.0)
    return streams, graph, virus, user


def test_submodel_structure(crossval_setup):
    _, _, virus, user = crossval_setup
    submodel = build_phone_submodel(
        3, contacts=(1, 7), susceptible=True, initially_infected=False,
        virus=virus, user=user,
    )
    place_names = {p.name for p in submodel.places}
    assert {"susceptible_3", "infected_3", "inbox_3", "received_3"} <= place_names
    assert {"inbox_1", "inbox_7"} <= place_names
    activity_names = {a.name for a in submodel.activities}
    assert activity_names == {"send_3", "read_3"}


def test_patient_zero_marking(crossval_setup):
    _, graph, virus, user = crossval_setup
    model = build_san_phone_network(graph, range(40), 5, virus, user)
    marking = model.initial_marking()
    assert marking["infected_5"] == 1
    assert marking["susceptible_5"] == 0
    assert marking["infected_6"] == 0
    assert marking["susceptible_6"] == 1


def test_patient_zero_must_be_susceptible(crossval_setup):
    _, graph, virus, user = crossval_setup
    with pytest.raises(ValueError):
        build_san_phone_network(graph, [0, 1], 5, virus, user)


def test_infected_reward_counts(crossval_setup):
    _, graph, virus, user = crossval_setup
    model = build_san_phone_network(graph, range(40), 5, virus, user)
    reward = infected_count_reward(40)
    assert reward.function(model.initial_marking()) == 1.0


def test_statistical_agreement(crossval_setup):
    """Mean final infections agree between SAN and direct implementations."""
    streams, graph, virus, user = crossval_setup
    replications = 12
    horizon = 48.0

    san_finals = []
    for rep in range(replications):
        result = run_san_phone_network(
            graph, range(40), patient_zero=0, virus=virus, user=user,
            until=horizon, rng=streams.stream(f"san-{rep}"),
        )
        san_finals.append(result.rewards.instant_value("infected"))

    network = NetworkParameters(
        population=40, susceptible_fraction=1.0, mean_contact_list_size=8.0
    )
    scenario = ScenarioConfig(
        name="xval", virus=virus, network=network, user=user, duration=horizon
    )
    direct_finals = [
        run_scenario(scenario, seed=rep, graph=graph, patient_zero=0).total_infected
        for rep in range(replications)
    ]

    san_mean = float(np.mean(san_finals))
    direct_mean = float(np.mean(direct_finals))
    pooled_std = float(np.std(san_finals + direct_finals, ddof=1))
    # Means within ~1.5 pooled standard errors of each other.
    standard_error = pooled_std * (2.0 / replications) ** 0.5
    assert abs(san_mean - direct_mean) <= max(3.0, 2.0 * standard_error)


def test_san_curve_monotone(crossval_setup):
    streams, graph, virus, user = crossval_setup
    result = run_san_phone_network(
        graph, range(40), patient_zero=0, virus=virus, user=user,
        until=24.0, rng=streams.stream("mono"),
    )
    trajectory = result.rewards.trajectory("infected")
    values = [v for _, v in trajectory]
    assert values == sorted(values)
    assert values[0] == 1.0
