"""Tests for per-phone state transitions."""

from __future__ import annotations

import pytest

from repro.core import Phone, PhoneState, PhoneStateError


def make_phone(susceptible: bool = True) -> Phone:
    return Phone(phone_id=7, susceptible=susceptible, contacts=(1, 2, 3))


class TestInfection:
    def test_infect_transitions(self):
        phone = make_phone()
        assert phone.can_become_infected
        phone.infect(5.0)
        assert phone.infected
        assert phone.state is PhoneState.INFECTED
        assert phone.infection_time == 5.0
        assert phone.actively_spreading
        assert not phone.can_become_infected

    def test_double_infection_rejected(self):
        phone = make_phone()
        phone.infect(1.0)
        with pytest.raises(PhoneStateError):
            phone.infect(2.0)

    def test_insusceptible_cannot_be_infected(self):
        phone = make_phone(susceptible=False)
        assert not phone.can_become_infected
        with pytest.raises(PhoneStateError):
            phone.infect(1.0)

    def test_immune_cannot_be_infected(self):
        phone = make_phone()
        phone.apply_patch()
        with pytest.raises(PhoneStateError):
            phone.infect(1.0)


class TestPatching:
    def test_patch_uninfected_makes_immune(self):
        phone = make_phone()
        assert phone.apply_patch() is True
        assert phone.state is PhoneState.IMMUNE
        assert not phone.can_become_infected
        assert not phone.actively_spreading

    def test_patch_infected_quarantines(self):
        phone = make_phone()
        phone.infect(1.0)
        assert phone.apply_patch() is True
        assert phone.infected  # still counted as infected
        assert phone.propagation_stopped
        assert not phone.actively_spreading

    def test_patch_idempotent(self):
        phone = make_phone()
        phone.apply_patch()
        assert phone.apply_patch() is False
        infected = make_phone()
        infected.infect(1.0)
        infected.apply_patch()
        assert infected.apply_patch() is False


class TestBlocking:
    def test_block_outgoing(self):
        phone = make_phone()
        phone.infect(1.0)
        assert phone.block_outgoing() is True
        assert not phone.actively_spreading
        assert phone.block_outgoing() is False


class TestBudgets:
    def test_record_send_counts(self):
        phone = make_phone()
        phone.infect(0.0)
        phone.record_send(1.0)
        phone.record_send(2.0, budget_units=5)
        assert phone.total_messages_sent == 2
        assert phone.sent_in_period == 6
        assert phone.last_send_time == 2.0

    def test_reboot_resets_period(self):
        phone = make_phone()
        phone.infect(0.0)
        phone.record_send(1.0)
        phone.reboot(24.0)
        assert phone.sent_in_period == 0
        assert phone.period_start == 24.0
        assert phone.total_messages_sent == 1  # lifetime count kept

    def test_start_new_period(self):
        phone = make_phone()
        phone.infect(0.0)
        phone.record_send(1.0)
        phone.start_new_period(24.0)
        assert phone.sent_in_period == 0
        assert phone.period_start == 24.0


class TestPendingEvents:
    def test_cancel_pending_send(self):
        from repro.des import Simulator

        sim = Simulator()
        phone = make_phone()
        fired = []
        phone.pending_send = sim.schedule(1.0, lambda: fired.append(1))
        phone.cancel_pending_send()
        assert phone.pending_send is None
        sim.run()
        assert fired == []

    def test_patch_cancels_pending_send(self):
        from repro.des import Simulator

        sim = Simulator()
        phone = make_phone()
        phone.infect(0.0)
        fired = []
        phone.pending_send = sim.schedule(1.0, lambda: fired.append(1))
        phone.apply_patch()
        sim.run()
        assert fired == []

    def test_cancel_pending_reboot(self):
        from repro.des import Simulator

        sim = Simulator()
        phone = make_phone()
        fired = []
        phone.pending_reboot = sim.schedule(1.0, lambda: fired.append(1))
        phone.cancel_pending_reboot()
        sim.run()
        assert fired == []
