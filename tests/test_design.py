"""Unit tests for the design DSL: algebra, compile, IO, CLI, manifests."""

from __future__ import annotations

import json
import sys
import textwrap

import pytest

from repro.cli import main
from repro.core.parameters import BlacklistConfig, GatewayScanConfig
from repro.design import (
    DesignError,
    ExperimentDesign,
    Factor,
    Level,
    ablate,
    build_scenario,
    compile_design,
    concat,
    cross,
    derive_factor,
    design_from_dict,
    latin_square,
    load_design,
    nest,
    render_label,
)
from repro.design.library import get_design
from repro.experiments.registry import UnknownExperimentError, get_experiment
from repro.obs.manifest import build_manifest, validate_manifest


# -- model -------------------------------------------------------------------


def virus_factor(*numbers):
    return Factor.of("virus", numbers, fmt="virus{}")


def test_factor_points_are_its_levels_in_order():
    factor = virus_factor(3, 1)
    assert [p["virus"].label for p in factor.points()] == ["virus3", "virus1"]
    assert factor.level("virus1").value == 1
    with pytest.raises(DesignError, match="no level"):
        factor.level("virus9")


def test_factor_rejects_duplicate_labels_and_empty():
    with pytest.raises(DesignError, match="duplicate"):
        Factor("virus", (Level("a", 1), Level("a", 2)))
    with pytest.raises(DesignError, match="no levels"):
        Factor("virus", ())


def test_cross_rejects_shared_factors():
    with pytest.raises(DesignError, match="share factor"):
        cross(virus_factor(1), virus_factor(2))


def test_concat_requires_matching_factor_sets():
    with pytest.raises(DesignError, match="share one factor set"):
        concat(virus_factor(1), Factor.of("duration", (6.0,)))
    both = concat(virus_factor(1), virus_factor(2))
    assert [p["virus"].label for p in both.points()] == ["virus1", "virus2"]


def test_operator_sugar_builds_cross_and_concat():
    product = virus_factor(1, 2) * Factor.of("duration", (6.0, 12.0))
    assert product.size == 4
    chained = virus_factor(1) + virus_factor(2)
    assert chained.size == 2


def test_nest_selects_child_design_per_outer_level():
    outer = Factor.of("virus", (1, 3), fmt="virus{}")
    nested = nest(
        outer,
        {
            "virus1": Factor("response", (Level("slow", ()),)),
            "virus3": Factor(
                "response", (Level("th10", (BlacklistConfig(threshold=10),)),)
            ),
        },
    )
    labels = [
        (p["virus"].label, p["response"].label) for p in nested.points()
    ]
    assert labels == [("virus1", "slow"), ("virus3", "th10")]
    with pytest.raises(DesignError, match="no child design"):
        nest(outer, {"virus1": Factor("response", (Level("x", ()),))})


def test_ablate_prepends_baseline_and_rejects_collision():
    factor = ablate(
        Factor("response", (Level("th10", (BlacklistConfig(threshold=10),)),))
    )
    assert factor.levels[0].label == "baseline"
    assert factor.levels[0].value == ()
    with pytest.raises(DesignError, match="already has"):
        ablate(factor)


def test_derive_factor_collapses_a_grid():
    grid = cross(Factor.of("dev", (24.0,)), Factor.of("dep", (1.0, 6.0)))
    factor = derive_factor(
        "response",
        grid,
        lambda p: Level(f"{p['dev'].value:g}+{p['dep'].value:g}", ()),
    )
    assert [level.label for level in factor.levels] == ["24+1", "24+6"]


# -- scenario interpretation -------------------------------------------------


def test_build_scenario_requires_virus():
    with pytest.raises(DesignError, match="'virus' factor"):
        build_scenario({"duration": Level("6h", 6.0)})


def test_build_scenario_rejects_unknown_factors():
    with pytest.raises(DesignError, match="unknown factor"):
        build_scenario({"virus": Level("virus1", 1), "mystery": Level("x", 1)})


def test_build_scenario_applies_every_known_factor():
    scenario = build_scenario(
        {
            "virus": Level("virus3", 3),
            "population": Level("n500", 500, suffix="-n500"),
            "duration": Level("12h", 12.0),
            "af": Level("af0.2", 0.2),
            "response": Level("th10", (BlacklistConfig(threshold=10),), suffix="th10"),
            "engine": Level("xl", "xl"),
        }
    )
    assert scenario.name == "virus3-baseline-n500+th10"
    assert scenario.network.population == 500
    assert scenario.duration == 12.0
    assert scenario.user.acceptance_factor == 0.2
    assert scenario.responses == (BlacklistConfig(threshold=10),)
    assert scenario.engine == "xl"


def test_build_scenario_topology_overrides_network():
    scenario = build_scenario(
        {
            "virus": Level("virus1", 1),
            "topology": Level("dense", {"mean_contact_list_size": 120.0}),
        }
    )
    assert scenario.network.mean_contact_list_size == 120.0


def test_render_label_templates_and_callables():
    point = {"virus": Level("virus2", 2), "response": Level("th10", ())}
    assert render_label("{virus}-{response}", point) == "virus2-th10"
    assert render_label(lambda p: p["virus"].label.upper(), point) == "VIRUS2"
    with pytest.raises(DesignError, match="unknown factor"):
        render_label("{nope}", point)


def test_seed_factor_pins_series_seed():
    design = ExperimentDesign(
        experiment_id="seeded",
        title="per-point seeds",
        paper_ref="(test)",
        description="",
        design=cross(
            virus_factor(1), Factor.of("seed", (5, 9), fmt="seed{}")
        ),
        label="{seed}",
    )
    compiled = compile_design(design, replications=1, seed=0)
    assert [job.seed for job in compiled.jobs] == [5, 9]


# -- IO ----------------------------------------------------------------------

TOML_DOC = textwrap.dedent(
    """
    [design]
    id = "custom-blacklist"
    title = "Blacklist mini-grid"
    label = "{virus}-{response}"
    replications = 2
    checkpoints = [6.0, 24.0]

    [[factor]]
    name = "virus"
    levels = [1, 3]

    [[factor]]
    name = "response"
    ablate = true

    [[factor.levels]]
    label = "th10"
    responses = [{kind = "blacklist", threshold = 10}]

    [[factor.levels]]
    label = "th20"
    responses = [{kind = "blacklist", threshold = 20}]
    """
)


def json_document():
    return {
        "design": {
            "id": "custom-json",
            "label": "{virus}-{response}",
            "subsample": {"seed": 7},
        },
        "factor": [
            {"name": "virus", "levels": [1, 2, 3]},
            {
                "name": "response",
                "levels": [
                    {"label": "none"},
                    {
                        "label": "scan6",
                        "responses": [
                            {"kind": "gateway_scan", "activation_delay": 6.0}
                        ],
                    },
                ],
            },
        ],
    }


def test_load_design_from_toml(tmp_path):
    if sys.version_info < (3, 11):
        pytest.skip("tomllib requires Python 3.11+")
    path = tmp_path / "design.toml"
    path.write_text(TOML_DOC, encoding="utf-8")
    design = load_design(path)
    assert design.experiment_id == "custom-blacklist"
    assert design.default_replications == 2
    spec = design.to_spec()
    assert [s.label for s in spec.series] == [
        "virus1-baseline", "virus1-th10", "virus1-th20",
        "virus3-baseline", "virus3-th10", "virus3-th20",
    ]
    assert spec.series[1].scenario.responses == (BlacklistConfig(threshold=10),)


def test_load_design_from_json(tmp_path):
    path = tmp_path / "design.json"
    path.write_text(json.dumps(json_document()), encoding="utf-8")
    design = load_design(path)
    assert design.subsample_seed == 7
    points = design.design.points()
    # Subsample covers every virus and both response levels.
    assert {p["virus"].label for p in points} == {"virus1", "virus2", "virus3"}
    assert {p["response"].label for p in points} == {"none", "scan6"}
    spec = design.to_spec()
    scan = next(s for s in spec.series if s.label.endswith("scan6"))
    assert scan.scenario.responses == (GatewayScanConfig(activation_delay=6.0),)


def test_load_design_rejects_unknown_suffix_and_bad_documents(tmp_path):
    bad = tmp_path / "design.yaml"
    bad.write_text("x", encoding="utf-8")
    with pytest.raises(DesignError, match="expected .toml or .json"):
        load_design(bad)
    broken = tmp_path / "broken.json"
    broken.write_text("{not json", encoding="utf-8")
    with pytest.raises(DesignError, match="invalid JSON"):
        load_design(broken)


def test_design_from_dict_validates_structure():
    with pytest.raises(DesignError, match="'id'"):
        design_from_dict({"factor": [{"name": "virus", "levels": [1]}]})
    with pytest.raises(DesignError, match=r"\[\[factor\]\]"):
        design_from_dict({"design": {"id": "x"}})
    with pytest.raises(DesignError, match="unknown factor"):
        design_from_dict(
            {"design": {"id": "x"}, "factor": [{"name": "beverage", "levels": [1]}]}
        )
    with pytest.raises(DesignError, match="no scalar shorthand"):
        design_from_dict(
            {"design": {"id": "x"}, "factor": [{"name": "response", "levels": [1]}]}
        )
    with pytest.raises(DesignError, match="unknown response kind"):
        design_from_dict(
            {
                "design": {"id": "x"},
                "factor": [
                    {"name": "virus", "levels": [1]},
                    {
                        "name": "response",
                        "levels": [
                            {"label": "z", "responses": [{"kind": "nope"}]}
                        ],
                    },
                ],
            }
        )


# -- manifests ---------------------------------------------------------------


def test_compiled_manifest_section_is_schema_valid():
    compiled = compile_design(get_design("fig2"), replications=2, seed=1)
    section = compiled.manifest_section()
    assert section["experiment"] == "fig2"
    assert section["requested_jobs"] == 8
    assert section["unique_jobs"] == 8
    assert section["dedup_ratio"] == 1.0
    assert [f["name"] for f in section["factors"]] == ["virus", "response"]
    document = build_manifest(
        "run", "design:fig2", wall_seconds=0.1, design=[section]
    )
    assert validate_manifest(document) == []


def test_manifest_design_section_validation_catches_junk():
    good = compile_design(get_design("fig1"), replications=1, seed=0).manifest_section()
    base = dict(wall_seconds=0.1)
    assert validate_manifest(build_manifest("run", "x", design=[good], **base)) == []
    bad = dict(good)
    bad.pop("experiment")
    problems = validate_manifest(build_manifest("run", "x", design=[bad], **base))
    assert any("experiment" in p for p in problems)
    worse = dict(good, dedup_ratio=1.5)
    problems = validate_manifest(build_manifest("run", "x", design=[worse], **base))
    assert any("dedup_ratio" in p for p in problems)


# -- registry errors (satellite: helpful unknown-id message) -----------------


def test_get_experiment_error_lists_valid_ids():
    with pytest.raises(UnknownExperimentError) as excinfo:
        get_experiment("fig99")
    message = str(excinfo.value)
    assert "fig99" in message
    for known in ("fig1", "fig7", "blacklist-slow", "scaling2000"):
        assert known in message
    # Still a KeyError for pre-existing callers.
    assert isinstance(excinfo.value, KeyError)


def test_cli_figure_unknown_id_exits_2_with_id_list(capsys):
    code = main(["figure", "fig99", "--no-cache"])
    assert code == 2
    err = capsys.readouterr().err
    assert "fig99" in err
    assert "fig1" in err and "scaling2000" in err


def test_cli_design_unknown_spec_exits_2(capsys):
    code = main(["design", "show", "not-a-design"])
    assert code == 2
    err = capsys.readouterr().err
    assert "not-a-design" in err
    assert "fig1" in err


# -- CLI ---------------------------------------------------------------------


def test_cli_design_show(capsys):
    assert main(["design", "show", "fig5"]) == 0
    out = capsys.readouterr().out
    assert "factor virus (1): virus4" in out
    assert "factor response (7)" in out
    assert "hours-24-25" in out
    assert "shape checks: 5" in out


def test_cli_design_compile(capsys):
    assert main(["design", "compile", "fig1", "--replications", "2"]) == 0
    out = capsys.readouterr().out
    assert "4 series × 2 replication(s)" in out
    assert "8 requested → 8 unique" in out


def test_cli_design_run_small(tmp_path, capsys):
    path = tmp_path / "tiny.json"
    path.write_text(
        json.dumps(
            {
                "design": {
                    "id": "tiny",
                    "label": "{virus}-{response}",
                    "checkpoints": [2.0, 4.0],
                },
                "factor": [
                    {"name": "virus", "levels": [3]},
                    {"name": "population", "levels": [150]},
                    {"name": "duration", "levels": [4.0]},
                    {
                        "name": "response",
                        "levels": [
                            {"label": "base"},
                            {
                                "label": "th10",
                                "suffix": "th10",
                                "responses": [
                                    {"kind": "blacklist", "threshold": 10}
                                ],
                            },
                        ],
                    },
                ],
            }
        ),
        encoding="utf-8",
    )
    manifest = tmp_path / "manifest.jsonl"
    code = main(
        [
            "design", "run", str(path),
            "--replications", "1",
            "--no-chart",
            "--cache-dir", str(tmp_path / "cache"),
            "--metrics", str(manifest),
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "virus3-base" in out and "virus3-th10" in out
    assert "dedup ratio 1.0" in out
    records = [
        json.loads(line)
        for line in manifest.read_text(encoding="utf-8").splitlines()
        if line.strip()
    ]
    assert len(records) == 1
    design_section = records[0]["design"]
    assert design_section[0]["experiment"] == "tiny"
    assert design_section[0]["requested_jobs"] == 2
    assert design_section[0]["dedup_ratio"] == 1.0


def test_build_scenario_latency_and_rollout_factors():
    from repro.core.parameters import ResponseDeployment

    scenario = build_scenario(
        {
            "virus": Level("virus1", 1),
            "response": Level("bl", (BlacklistConfig(threshold=10),)),
            "latency": Level("lat24", 24.0, suffix="-lat24"),
            "rollout": Level("roll4", 0.25, suffix="-roll4h"),
        }
    )
    assert scenario.deployment == ResponseDeployment(
        latency_hours=24.0, rollout_rate=0.25
    )
    assert scenario.name.endswith("-lat24-roll4h")
    # A null rollout level keeps the instantaneous-coverage default.
    latency_only = build_scenario(
        {
            "virus": Level("virus1", 1),
            "latency": Level("lat0", 0.0),
        }
    )
    assert latency_only.deployment == ResponseDeployment(
        latency_hours=0.0, rollout_rate=None
    )


def test_build_scenario_without_deployment_factors_leaves_deployment_unset():
    scenario = build_scenario({"virus": Level("virus1", 1)})
    assert scenario.deployment is None


def test_frontier_design_compiles_with_deployments():
    from repro.core.parameters import ResponseDeployment
    from repro.design.library import EXTENSION_IDS

    assert "frontier" in EXTENSION_IDS
    spec = get_design("frontier").to_spec()
    assert spec.experiment_id == "frontier"
    labels = [series.label for series in spec.series]
    assert labels == ["lat0", "lat24", "lat48", "lat96"]
    for series, hours in zip(spec.series, (0.0, 24.0, 48.0, 96.0)):
        assert series.scenario.deployment == ResponseDeployment(
            latency_hours=hours, rollout_rate=None
        )
    assert spec.engine == "xl"
    compiled = compile_design(get_design("frontier"), replications=2, seed=0)
    assert len(compiled.jobs) == 8  # 4 distinct deployments x 2 replications
    assert compiled.manifest_section()["experiment"] == "frontier"
