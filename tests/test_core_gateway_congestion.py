"""Tests for the finite-capacity (congested) gateway extension."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.core import MMSGateway, MMSMessage, NetworkParameters
from repro.core.simulation import run_scenario
from repro.des import Simulator


def make_message(i: int) -> MMSMessage:
    return MMSMessage(message_id=i, sender=0, recipients=(1,), send_time=0.0)


class TestCongestedGateway:
    def test_serves_fifo(self):
        sim = Simulator()
        order = []
        gateway = MMSGateway(
            sim, np.random.default_rng(0), 0.0,
            lambda m: order.append(m.message_id),
            capacity_per_hour=60.0,
        )
        for i in range(5):
            gateway.submit(make_message(i))
        sim.run()
        assert order == [0, 1, 2, 3, 4]
        assert gateway.messages_delivered == 5
        assert gateway.backlog == 0

    def test_overload_builds_backlog(self):
        sim = Simulator()
        gateway = MMSGateway(
            sim, np.random.default_rng(0), 0.0, lambda m: None,
            capacity_per_hour=10.0,  # mean service 6 min
        )
        # 50 messages arrive at t=0: far above instantaneous capacity.
        for i in range(50):
            gateway.submit(make_message(i))
        assert gateway.backlog > 40
        sim.run(until=1.0)  # one hour: ~10 served
        assert 0 < gateway.messages_delivered < 30
        assert gateway.max_backlog >= 49
        sim.run(until=20.0)
        assert gateway.messages_delivered == 50
        assert gateway.mean_queue_wait() > 0.5

    def test_light_load_negligible_wait(self):
        sim = Simulator()
        gateway = MMSGateway(
            sim, np.random.default_rng(0), 0.0, lambda m: None,
            capacity_per_hour=1000.0,
        )
        for i in range(10):
            sim.schedule(i * 0.5, lambda i=i: gateway.submit(make_message(i)))
        sim.run()
        assert gateway.messages_delivered == 10
        assert gateway.mean_queue_wait() < 0.01

    def test_filters_applied_before_queueing(self):
        sim = Simulator()
        gateway = MMSGateway(
            sim, np.random.default_rng(0), 0.0, lambda m: None,
            capacity_per_hour=10.0,
        )
        gateway.add_filter(lambda m, now: True)
        gateway.submit(make_message(0))
        assert gateway.backlog == 0
        assert gateway.messages_blocked == 1

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            MMSGateway(
                Simulator(), np.random.default_rng(0), 0.0, lambda m: None,
                capacity_per_hour=0.0,
            )


class TestCongestionInScenario:
    def test_virus3_congests_a_small_gateway(self):
        """A rapid virus against a constrained gateway: delivery stalls."""
        from repro.core import baseline_scenario

        unconstrained_network = NetworkParameters(
            population=200, mean_contact_list_size=20.0
        )
        constrained_network = dataclasses.replace(
            unconstrained_network, gateway_capacity_per_hour=200.0
        )
        fast = run_scenario(
            baseline_scenario(3, network=unconstrained_network, duration=12.0),
            seed=2,
        )
        # Rebuild with capacity: ScenarioConfig is frozen, so replace.
        scenario = baseline_scenario(3, network=constrained_network, duration=12.0)
        congested = run_scenario(scenario, seed=2)
        # The virus offers hundreds of messages/hour; at 200/h capacity the
        # backlog throttles delivery and the infection lags well behind.
        assert congested.infected_at(6.0) < fast.infected_at(6.0)
