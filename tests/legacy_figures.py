"""Frozen copy of the pre-DSL hand-written figure builders.

This module is the *differential baseline* for
``test_design_equivalence.py``: it is the last pre-``repro.design``
version of ``src/repro/experiments/figures.py``, kept verbatim (only
the imports are rewritten as absolute) so the declarative designs in
``repro.design.library`` can be proven job-for-job identical to the
code they replaced.  Do not edit the builder bodies; if an experiment
legitimately changes, change the library design and regenerate this
freeze from the old builder in the same commit.
"""


from __future__ import annotations

import dataclasses
from typing import Tuple

from repro.core.parameters import (
    BlacklistConfig,
    DetectionAlgorithmConfig,
    GatewayScanConfig,
    ImmunizationConfig,
    MonitoringConfig,
    NetworkParameters,
    UserEducationConfig,
)
from repro.core.scenarios import baseline_scenario
from repro.core.units import DAYS, HOURS, MINUTES
from repro.experiments import checks
from repro.experiments.spec import ExperimentSpec, SeriesSpec

#: The paper's expected unconstrained plateau: 800 susceptible × 0.40.
PAPER_PLATEAU = 320.0


def fig1() -> ExperimentSpec:
    """Figure 1: baseline infection curves for all four viruses."""
    series = tuple(
        SeriesSpec(f"virus{v}", baseline_scenario(v)) for v in (1, 2, 3, 4)
    )
    return ExperimentSpec(
        experiment_id="fig1",
        title="Baseline Infection Curves without Response Mechanisms",
        paper_ref="Figure 1",
        description=(
            "All four viruses produce classic S-shaped infection curves that "
            "plateau at ≈320 infected phones (800 susceptible × 0.40 total "
            "acceptance). Virus 2 is step-like (daily bursts); Virus 3 "
            "saturates within its 24-hour window; Viruses 1 and 4 take "
            "one to two weeks."
        ),
        series=series,
        checkpoints=(24.0, 48.0, 96.0, 240.0, 432.0),
        shape_checks=(
            checks.plateau_near("virus1", PAPER_PLATEAU),
            checks.plateau_near("virus2", PAPER_PLATEAU),
            checks.plateau_near("virus3", PAPER_PLATEAU),
            checks.plateau_near("virus4", PAPER_PLATEAU),
            checks.s_shaped("virus1"),
            checks.s_shaped("virus4"),
            checks.steppier_than("virus2", "virus1"),
            checks.faster_saturation("virus3", "virus2"),
            checks.faster_saturation("virus2", "virus1"),
            checks.faster_saturation("virus1", "virus4"),
        ),
    )


def fig2() -> ExperimentSpec:
    """Figure 2: gateway virus scan on Virus 1, delay 6/12/24 h."""
    base = baseline_scenario(1)
    series = (
        SeriesSpec("baseline", base),
        SeriesSpec("6h-delay", base.with_responses(GatewayScanConfig(6 * HOURS))),
        SeriesSpec("12h-delay", base.with_responses(GatewayScanConfig(12 * HOURS))),
        SeriesSpec("24h-delay", base.with_responses(GatewayScanConfig(24 * HOURS))),
    )
    return ExperimentSpec(
        experiment_id="fig2",
        title="Virus Scan: Varying the Activation Time Delay (Virus 1)",
        paper_ref="Figure 2",
        description=(
            "The signature scan halts propagation once deployed; prompter "
            "deployment contains the infection earlier. Paper: with a 6-hour "
            "delay the infection reaches only ~5% of the baseline level; "
            "even 24 hours contains it to ~25%."
        ),
        series=series,
        checkpoints=(24.0, 96.0, 432.0),
        shape_checks=(
            checks.final_ordering(["6h-delay", "12h-delay", "24h-delay", "baseline"]),
            checks.containment_below("6h-delay", "baseline", 0.15),
            checks.containment_below("24h-delay", "baseline", 0.45),
        ),
    )


def fig3() -> ExperimentSpec:
    """Figure 3: gateway detection algorithm on Virus 2, accuracy sweep."""
    base = baseline_scenario(2)
    series = [SeriesSpec("baseline", base)]
    for accuracy in (0.99, 0.95, 0.90, 0.85, 0.80):
        series.append(
            SeriesSpec(
                f"acc-{accuracy:.2f}",
                base.with_responses(DetectionAlgorithmConfig(accuracy=accuracy)),
            )
        )
    return ExperimentSpec(
        experiment_id="fig3",
        title="Virus Detection Algorithm: Varying Detection Accuracy (Virus 2)",
        paper_ref="Figure 3",
        description=(
            "The heuristic detector blocks each infected message with "
            "probability equal to its accuracy, slowing (not stopping) the "
            "spread; higher accuracy slows more. Paper: at 0.95 accuracy, "
            "reaching 135 infected phones takes ~9 days instead of ~2."
        ),
        series=tuple(series),
        checkpoints=(48.0, 120.0, 240.0),
        shape_checks=(
            checks.final_ordering(
                ["acc-0.99", "acc-0.95", "acc-0.90", "acc-0.85", "acc-0.80", "baseline"]
            ),
            checks.slower_to_level("acc-0.95", "baseline", level=135.0, min_delay=48.0),
            checks.slower_to_level("acc-0.80", "baseline", level=135.0, min_delay=12.0),
        ),
    )


def fig4() -> ExperimentSpec:
    """Figure 4: phone user education across all four viruses."""
    series = []
    check_list = []
    for v in (1, 2, 3, 4):
        base = baseline_scenario(v)
        educated = base.with_responses(
            UserEducationConfig(acceptance_scale=0.5), suffix="usered"
        )
        series.append(SeriesSpec(f"virus{v}", base))
        series.append(SeriesSpec(f"virus{v}-usered", educated))
        check_list.append(
            checks.containment_between(
                f"virus{v}-usered",
                f"virus{v}",
                0.35,
                0.70,
                name=f"education halves virus{v} plateau",
            )
        )
    return ExperimentSpec(
        experiment_id="fig4",
        title="Phone User Education: Effective for All Viruses",
        paper_ref="Figure 4",
        description=(
            "Halving the acceptance factor reduces the total probability of "
            "eventual acceptance from 0.40 to ≈0.20 and halves the plateau "
            "for every virus — the only mechanism that is universally "
            "effective, including against Virus 3."
        ),
        series=tuple(series),
        checkpoints=(96.0, 432.0),
        shape_checks=tuple(check_list),
    )


def fig5() -> ExperimentSpec:
    """Figure 5: immunization on Virus 4, (development, deployment) sweep."""
    base = baseline_scenario(4)
    series = [SeriesSpec("baseline", base)]
    for dev in (24.0, 48.0):
        for deploy in (1.0, 6.0, 24.0):
            label = f"hours-{dev:.0f}-{dev + deploy:.0f}"
            series.append(
                SeriesSpec(
                    label,
                    base.with_responses(
                        ImmunizationConfig(
                            development_time=dev, deployment_window=deploy
                        )
                    ),
                )
            )
    return ExperimentSpec(
        experiment_id="fig5",
        title="Immunization Using Patches: Varying the Deployment Times (Virus 4)",
        paper_ref="Figure 5",
        description=(
            "Patch development time (24 vs 48 h after detectability) sets how "
            "long the virus spreads unrestrained; the deployment window (1, "
            "6, 24 h) sets how much more it spreads during rollout. Paper: "
            "a 24-hour rollout admits ~60% more infections than a 1-hour "
            "rollout (24-hour development case)."
        ),
        series=tuple(series),
        checkpoints=(48.0, 96.0, 432.0),
        shape_checks=(
            checks.final_ordering(["hours-24-25", "hours-24-30", "hours-24-48"]),
            checks.final_ordering(["hours-48-49", "hours-48-54", "hours-48-72"]),
            checks.final_ordering(["hours-24-25", "hours-48-49"]),
            checks.final_ordering(["hours-24-48", "hours-48-72"]),
            checks.containment_below("hours-24-25", "baseline", 0.6),
        ),
    )


def fig6() -> ExperimentSpec:
    """Figure 6: monitoring on Virus 3, forced wait 15/30/60 min."""
    base = baseline_scenario(3)
    series = (
        SeriesSpec("baseline", base),
        SeriesSpec(
            "15min-wait", base.with_responses(MonitoringConfig(forced_wait=15 * MINUTES))
        ),
        SeriesSpec(
            "30min-wait", base.with_responses(MonitoringConfig(forced_wait=30 * MINUTES))
        ),
        SeriesSpec(
            "60min-wait", base.with_responses(MonitoringConfig(forced_wait=60 * MINUTES))
        ),
    )
    return ExperimentSpec(
        experiment_id="fig6",
        title="Monitoring: Varying the Wait Time for Suspicious Phones (Virus 3)",
        paper_ref="Figure 6",
        description=(
            "Monitoring flags Virus 3's anomalous volume and throttles "
            "flagged phones, buying hours for a secondary response; longer "
            "forced waits slow the spread more. Paper: baseline reaches 150 "
            "infections in ~2.5 h, while a 15-minute wait keeps the level "
            "under 150 for many hours."
        ),
        series=series,
        checkpoints=(5.0, 10.0, 20.0, 24.0),
        shape_checks=(
            checks.slower_to_level("15min-wait", "baseline", level=150.0, min_delay=3.0),
            checks.slower_to_level("30min-wait", "baseline", level=150.0, min_delay=4.0),
            checks.slower_to_level("60min-wait", "baseline", level=150.0, min_delay=6.0),
        ),
    )


def fig7() -> ExperimentSpec:
    """Figure 7: blacklisting on Virus 3, threshold 10/20/30/40."""
    base = baseline_scenario(3)
    series = [SeriesSpec("baseline", base)]
    for threshold in (10, 20, 30, 40):
        series.append(
            SeriesSpec(
                f"{threshold}-messages",
                base.with_responses(BlacklistConfig(threshold=threshold)),
            )
        )
    return ExperimentSpec(
        experiment_id="fig7",
        title="Blacklisting: Varying the Activation Threshold (Virus 3)",
        paper_ref="Figure 7",
        description=(
            "Blacklisting counts suspected infected messages (invalid random "
            "dials included) and cuts off MMS service at the threshold; it "
            "is most effective against Virus 3 because invalid dials count "
            "too. Lower thresholds contain the virus harder."
        ),
        series=tuple(series),
        checkpoints=(5.0, 10.0, 24.0),
        shape_checks=(
            checks.final_ordering(
                ["10-messages", "20-messages", "30-messages", "40-messages", "baseline"]
            ),
            checks.containment_below("10-messages", "baseline", 0.35),
        ),
    )


def text_blacklist_slow() -> ExperimentSpec:
    """§5.2 text: blacklisting against the slow viruses (1 and 4) and V2."""
    series = []
    for v in (1, 2, 4):
        base = baseline_scenario(v)
        series.append(SeriesSpec(f"virus{v}-baseline", base))
        for threshold in (10, 20, 30, 40):
            series.append(
                SeriesSpec(
                    f"virus{v}-th{threshold}",
                    base.with_responses(BlacklistConfig(threshold=threshold)),
                )
            )
    return ExperimentSpec(
        experiment_id="blacklist-slow",
        title="Blacklisting against Viruses 1, 2 and 4 (§5.2 text)",
        paper_ref="Section 5.2 (text)",
        description=(
            "Paper: threshold 10 is somewhat effective for Viruses 1 and 4 "
            "(penetration restricted versus baseline) but higher thresholds "
            "are ineffective; blacklisting is completely ineffective against "
            "Virus 2 at any threshold because each multi-recipient message "
            "counts once."
        ),
        series=tuple(series),
        checkpoints=(96.0, 432.0),
        shape_checks=(
            checks.containment_below("virus1-th10", "virus1-baseline", 0.70),
            checks.containment_below("virus4-th10", "virus4-baseline", 0.70),
            checks.final_ordering(
                ["virus1-th10", "virus1-th20", "virus1-th30", "virus1-th40"]
            ),
            checks.ineffective("virus2-th10", "virus2-baseline"),
            checks.ineffective("virus2-th40", "virus2-baseline"),
        ),
    )


def combined_defenses() -> ExperimentSpec:
    """Conclusion (future work): combinations of reaction mechanisms.

    The paper: "This work can be extended with an evaluation of
    combinations of reaction mechanisms, particularly when a response
    mechanism that only slows virus propagation requires a secondary
    mechanism to completely halt virus spread."  We implement that study
    for the hardest case, Virus 3: monitoring alone slows, the gateway
    scan alone is too late, and the combination contains.
    """
    base = baseline_scenario(3).with_duration(48 * HOURS)
    monitoring = MonitoringConfig(forced_wait=15 * MINUTES)
    scan = GatewayScanConfig(activation_delay=6 * HOURS)
    series = (
        SeriesSpec("baseline", base),
        SeriesSpec("monitoring-only", base.with_responses(monitoring)),
        SeriesSpec("scan-only", base.with_responses(scan)),
        SeriesSpec("monitoring+scan", base.with_responses(monitoring, scan)),
    )
    return ExperimentSpec(
        experiment_id="combo",
        title="Combined Defenses against Virus 3 (conclusion, future work)",
        paper_ref="Section 6 (proposed extension)",
        description=(
            "Layering a slowing mechanism (monitoring) under a stopping "
            "mechanism (gateway scan) contains a rapid virus that defeats "
            "either alone: the forced waits hold the infection level down "
            "until the signature deploys."
        ),
        series=series,
        checkpoints=(6.0, 12.0, 24.0, 48.0),
        shape_checks=(
            checks.ineffective("scan-only", "baseline", min_fraction=0.75),
            checks.containment_below("monitoring+scan", "baseline", 0.5),
            checks.containment_below(
                "monitoring+scan", "monitoring-only", 0.75,
                name="combination beats monitoring alone",
            ),
            checks.containment_below(
                "monitoring+scan", "scan-only", 0.6,
                name="combination beats scan alone",
            ),
        ),
    )


def scaling2000() -> ExperimentSpec:
    """§5.3 text: results scale from 1000 to 2000 phones."""
    small = baseline_scenario(1)
    big_network = NetworkParameters(population=2000)
    big = dataclasses.replace(
        baseline_scenario(1, network=big_network), name="virus1-baseline-n2000"
    )
    series = (
        SeriesSpec("n1000", small),
        SeriesSpec("n2000", big),
    )

    def penetration_matches(results):
        from repro.experiments.spec import CheckResult

        small_pen = results["n1000"].final_summary().mean / 800.0
        big_pen = results["n2000"].final_summary().mean / 1600.0
        return CheckResult(
            name="penetration scales with population",
            passed=abs(small_pen - big_pen) <= 0.08,
            detail=f"n1000 penetration={small_pen:.1%}, n2000={big_pen:.1%}",
        )

    return ExperimentSpec(
        experiment_id="scaling2000",
        title="Population Scaling: 1000 vs 2000 Phones (§5.3 text)",
        paper_ref="Section 5.3 (text)",
        description=(
            "Paper: additional experiments with a 2000-phone population "
            "demonstrate that the results scale nicely — the penetration "
            "fraction and curve shape are preserved."
        ),
        series=series,
        checkpoints=(96.0, 240.0, 432.0),
        shape_checks=(penetration_matches,),
    )


__all__ = [
    "PAPER_PLATEAU",
    "fig1",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "text_blacklist_slow",
    "combined_defenses",
    "scaling2000",
]
