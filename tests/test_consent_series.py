"""The paper's consent series: P(accept nth) = AF/2^n with AF = 0.468.

Section 4.4 of the paper calibrates AF so that roughly 40% of susceptible
users eventually accept an infected attachment; that 0.40 plateau is the
anchor every engine in the differential campaign is compared against.
"""

from __future__ import annotations

import math

import pytest

from repro.analysis.meanfield import (
    MeanFieldParameters,
    expected_mean_field_plateau,
)
from repro.core.user import (
    ACCEPTANCE_NEGLIGIBLE_AFTER,
    PAPER_ACCEPTANCE_FACTOR,
    acceptance_probability,
    total_acceptance_probability,
)


def test_paper_acceptance_factor_value():
    assert PAPER_ACCEPTANCE_FACTOR == 0.468


def test_series_terms_halve():
    for n in range(1, 11):
        expected = PAPER_ACCEPTANCE_FACTOR / 2**n
        assert acceptance_probability(PAPER_ACCEPTANCE_FACTOR, n) == pytest.approx(
            expected
        )
    assert acceptance_probability(PAPER_ACCEPTANCE_FACTOR, 1) == pytest.approx(0.234)


def test_ever_accept_is_about_forty_percent():
    ever = total_acceptance_probability(PAPER_ACCEPTANCE_FACTOR)
    # The infinite product 1 - prod(1 - AF/2^n) converges to ~0.3985.
    assert ever == pytest.approx(0.40, abs=0.005)
    # and matches an explicit long-product evaluation
    survive = 1.0
    for n in range(1, ACCEPTANCE_NEGLIGIBLE_AFTER + 1):
        survive *= 1.0 - PAPER_ACCEPTANCE_FACTOR / 2**n
    assert ever == pytest.approx(1.0 - survive, abs=1e-9)


def test_truncation_point_is_negligible():
    # Terms beyond the truncation point change the product by < 1e-9.
    tail = PAPER_ACCEPTANCE_FACTOR / 2 ** (ACCEPTANCE_NEGLIGIBLE_AFTER + 1)
    assert tail < 1e-9


def test_plateau_on_the_paper_network():
    # Paper network: 1000 phones, 800 susceptible, one initial infection.
    params = MeanFieldParameters(
        population=1000,
        susceptible=800,
        delivery_rate=2.0,
        acceptance_factor=PAPER_ACCEPTANCE_FACTOR,
    )
    plateau = expected_mean_field_plateau(params)
    ever = total_acceptance_probability(PAPER_ACCEPTANCE_FACTOR)
    # patient zero + 799 remaining susceptibles x P(ever accept)
    assert plateau == pytest.approx(1.0 + 799.0 * ever)
    # ... which is the paper's ~0.40 x 800 infection ceiling (~320 phones)
    assert plateau == pytest.approx(0.40 * 800.0, rel=0.02)
    assert math.isclose(plateau, 319.4, abs_tol=1.5)
