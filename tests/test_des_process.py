"""Tests for the generator-based process layer."""

from __future__ import annotations

import pytest

from repro.des import (
    AllOf,
    AnyOf,
    Interrupted,
    Simulator,
    Timeout,
    Waiter,
    start_process,
)
from repro.des.simulator import SimulationError


def test_timeout_advances_clock():
    sim = Simulator()
    trace = []

    def proc():
        trace.append(sim.now)
        yield Timeout(2.0)
        trace.append(sim.now)

    start_process(sim, proc())
    sim.run()
    assert trace == [0.0, 2.0]


def test_process_return_value():
    sim = Simulator()

    def proc():
        yield Timeout(1.0)
        return "done"

    process = start_process(sim, proc())
    sim.run()
    assert process.done
    assert process.value == "done"


def test_sequential_timeouts():
    sim = Simulator()
    times = []

    def proc():
        for delay in (1.0, 2.0, 3.0):
            yield Timeout(delay)
            times.append(sim.now)

    start_process(sim, proc())
    sim.run()
    assert times == [1.0, 3.0, 6.0]


def test_waiter_succeeded_externally():
    sim = Simulator()
    waiter = Waiter()
    got = []

    def consumer():
        value = yield waiter
        got.append(value)

    def producer():
        yield Timeout(5.0)
        waiter.succeed("payload")

    start_process(sim, consumer())
    start_process(sim, producer())
    sim.run()
    assert got == ["payload"]
    assert sim.now == 5.0


def test_waiter_failure_propagates_into_process():
    sim = Simulator()
    waiter = Waiter()
    caught = []

    def consumer():
        try:
            yield waiter
        except RuntimeError as exc:
            caught.append(str(exc))

    def producer():
        yield Timeout(1.0)
        waiter.fail(RuntimeError("boom"))

    start_process(sim, consumer())
    start_process(sim, producer())
    sim.run()
    assert caught == ["boom"]


def test_all_of_waits_for_every_child():
    sim = Simulator()
    results = []

    def proc():
        values = yield AllOf([Timeout(1.0, value="a"), Timeout(3.0, value="b")])
        results.append((sim.now, values))

    start_process(sim, proc())
    sim.run()
    assert results == [(3.0, ["a", "b"])]


def test_any_of_returns_first():
    sim = Simulator()
    results = []

    def proc():
        value = yield AnyOf([Timeout(5.0, value="slow"), Timeout(1.0, value="fast")])
        results.append((sim.now, value))

    start_process(sim, proc())
    sim.run()
    assert results == [(1.0, "fast")]


def test_interrupt_raises_inside_process():
    sim = Simulator()
    trace = []

    def victim():
        try:
            yield Timeout(100.0)
        except Interrupted as exc:
            trace.append(("interrupted", sim.now, exc.cause))

    process = start_process(sim, victim())

    def interrupter():
        yield Timeout(2.0)
        process.interrupt("reason")

    start_process(sim, interrupter())
    sim.run()
    assert trace == [("interrupted", 2.0, "reason")]


def test_unhandled_interrupt_fails_process():
    sim = Simulator()

    def victim():
        yield Timeout(100.0)

    process = start_process(sim, victim())

    def interrupter():
        yield Timeout(1.0)
        process.interrupt()

    start_process(sim, interrupter())
    sim.run()
    assert process.done
    assert isinstance(process.exception, Interrupted)


def test_process_exception_captured():
    sim = Simulator()

    def bad():
        yield Timeout(1.0)
        raise ValueError("broken")

    process = start_process(sim, bad())
    sim.run()
    assert isinstance(process.exception, ValueError)


def test_yielding_non_waitable_fails():
    sim = Simulator()

    def bad():
        yield 42

    process = start_process(sim, bad())
    sim.run()
    assert isinstance(process.exception, SimulationError)


def test_process_is_waitable():
    sim = Simulator()
    order = []

    def child():
        yield Timeout(2.0)
        order.append("child")
        return 7

    def parent():
        value = yield start_process(sim, child())
        order.append(f"parent:{value}")

    start_process(sim, parent())
    sim.run()
    assert order == ["child", "parent:7"]


def test_negative_timeout_rejected():
    with pytest.raises(SimulationError):
        Timeout(-1.0)


def test_empty_all_of_succeeds_immediately():
    sim = Simulator()
    results = []

    def proc():
        values = yield AllOf([])
        results.append(values)

    start_process(sim, proc())
    sim.run()
    assert results == [[]]


def test_empty_any_of_rejected():
    with pytest.raises(SimulationError):
        AnyOf([])
