"""Tests for run-manifest building, validation, and the JSONL round trip."""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.core.parameters import (
    NetworkParameters,
    ScenarioConfig,
    UserParameters,
    VirusParameters,
)
from repro.obs.__main__ import main as obs_main
from repro.obs.manifest import (
    MANIFEST_SCHEMA_VERSION,
    append_manifest,
    build_manifest,
    host_info,
    read_manifests,
    scenario_hash,
    validate_manifest,
)


@pytest.fixture
def config() -> ScenarioConfig:
    return ScenarioConfig(
        name="manifest-test",
        virus=VirusParameters(name="v"),
        network=NetworkParameters(population=50, mean_contact_list_size=8.0),
        user=UserParameters(),
        duration=2.0,
    )


def full_record(config):
    return build_manifest(
        "run",
        "unit",
        wall_seconds=1.5,
        events_executed=3000,
        events_total=4500,
        seed=7,
        seeds=[7],
        replications=4,
        scenarios=[{"name": config.name, "hash": scenario_hash(config), "jobs": 4}],
        scheduler={"scheduled": 4, "executed": 3, "cache_hits": 1},
        cache={
            "hits": 1,
            "misses": 3,
            "writes": 3,
            "hit_ratio": 0.25,
            "dir": "/tmp/cache",
        },
        workers=[
            {
                "pid": 123,
                "jobs": 3,
                "events": 3000,
                "busy_seconds": 1.4,
                "events_per_second": 2142.9,
            }
        ],
        kernel={"events_fired": 3000, "events_cancelled": 5, "heap_peak": 40},
        metrics={"counters": {}, "gauges": {}, "timers": {}},
        extra={"note": "unit"},
    )


class TestBuild:
    def test_full_record_is_valid(self, config):
        assert validate_manifest(full_record(config)) == []

    def test_minimal_record_is_valid(self):
        record = build_manifest("profile", "tiny", wall_seconds=0.0)
        assert validate_manifest(record) == []
        assert record["events_per_second"] == 0.0

    def test_rate_derivation(self):
        record = build_manifest(
            "run", "x", wall_seconds=2.0, events_executed=1000
        )
        assert record["events_per_second"] == 500.0

    def test_host_info_recorded(self):
        record = build_manifest("run", "x", wall_seconds=0.1)
        assert record["host"]["python"] == host_info()["python"]
        assert "hostname" in record["host"]


class TestValidate:
    def test_missing_required_field(self, config):
        record = full_record(config)
        del record["wall_seconds"]
        assert any("wall_seconds" in p for p in validate_manifest(record))

    def test_bad_kind(self, config):
        record = full_record(config)
        record["kind"] = "nonsense"
        assert any("kind" in p for p in validate_manifest(record))

    def test_bad_schema_version(self, config):
        record = full_record(config)
        record["manifest_schema"] = MANIFEST_SCHEMA_VERSION + 1
        assert validate_manifest(record)

    def test_negative_wall_rejected(self, config):
        record = full_record(config)
        record["wall_seconds"] = -1.0
        assert any("negative" in p for p in validate_manifest(record))

    def test_cache_section_checked(self, config):
        record = full_record(config)
        record["cache"]["hit_ratio"] = 1.5
        assert any("hit_ratio" in p for p in validate_manifest(record))
        del record["cache"]["dir"]
        assert any("cache.dir" in p for p in validate_manifest(record))

    def test_worker_section_checked(self, config):
        record = full_record(config)
        del record["workers"][0]["events"]
        assert any("workers[0].events" in p for p in validate_manifest(record))

    def test_scenario_section_checked(self, config):
        record = full_record(config)
        del record["scenarios"][0]["hash"]
        assert any("config hash" in p for p in validate_manifest(record))

    def test_non_mapping_rejected(self):
        assert validate_manifest([1, 2, 3])


class TestScenarioHash:
    def test_stable(self, config):
        assert scenario_hash(config) == scenario_hash(config)

    def test_sensitive_to_config_changes(self, config):
        changed = dataclasses.replace(config, duration=3.0)
        assert scenario_hash(changed) != scenario_hash(config)


class TestJsonlRoundTrip:
    def test_append_and_read(self, tmp_path, config):
        path = tmp_path / "m" / "out.jsonl"
        append_manifest(path, full_record(config))
        append_manifest(path, build_manifest("run", "second", wall_seconds=0.1))
        records = read_manifests(path)
        assert [r["label"] for r in records] == ["unit", "second"]
        assert all(validate_manifest(r) == [] for r in records)

    def test_append_refuses_invalid(self, tmp_path, config):
        record = full_record(config)
        record["kind"] = "bogus"
        with pytest.raises(ValueError, match="kind"):
            append_manifest(tmp_path / "out.jsonl", record)
        assert not (tmp_path / "out.jsonl").exists()

    def test_read_rejects_junk_lines(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"ok": 1}\nnot json\n')
        with pytest.raises(ValueError, match="not valid JSON"):
            read_manifests(path)

    def test_blank_lines_skipped(self, tmp_path, config):
        path = tmp_path / "out.jsonl"
        append_manifest(path, full_record(config))
        with path.open("a") as handle:
            handle.write("\n")
        assert len(read_manifests(path)) == 1


class TestCheckCli:
    def test_valid_file_passes(self, tmp_path, config, capsys):
        path = tmp_path / "out.jsonl"
        append_manifest(path, full_record(config))
        assert obs_main(["check", str(path)]) == 0
        assert "1 schema-valid records" in capsys.readouterr().out

    def test_kind_filter(self, tmp_path, config, capsys):
        path = tmp_path / "out.jsonl"
        append_manifest(path, full_record(config))
        assert obs_main(["check", str(path), "--kind", "run"]) == 0
        assert obs_main(["check", str(path), "--kind", "benchmark"]) == 1

    def test_missing_file_fails(self, tmp_path, capsys):
        assert obs_main(["check", str(tmp_path / "nope.jsonl")]) == 1
        assert "missing" in capsys.readouterr().err

    def test_empty_file_fails(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert obs_main(["check", str(path)]) == 1

    def test_invalid_record_fails(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps({"manifest_schema": 1}) + "\n")
        assert obs_main(["check", str(path)]) == 1
        assert "missing required field" in capsys.readouterr().err
