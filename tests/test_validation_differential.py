"""Cross-engine differential campaigns: scenario matching, gating, CLI."""

from __future__ import annotations

import json
from dataclasses import replace

import pytest

from repro.analysis.meanfield import (
    expected_mean_field_plateau,
    mean_field_for_scenario,
)
from repro.core.san_model import (
    SANCompatibilityError,
    assert_san_compatible,
    san_incompatibilities,
)
from repro.core.scenarios import baseline_scenario
from repro.core.user import total_acceptance_probability
from repro.validation import cli as validation_cli
from repro.validation.differential import (
    Tolerances,
    run_campaign,
    run_differential_scenario,
)
from repro.validation.scenarios import (
    VALIDATION_SEED,
    baseline_differential_scenarios,
    matched_scenario,
)


class TestMatchedScenarios:
    def test_all_four_viruses_are_san_compatible(self):
        scenarios = baseline_differential_scenarios()
        assert [s.virus_number for s in scenarios] == [1, 2, 3, 4]
        for scenario in scenarios:
            assert san_incompatibilities(scenario.config) == []
            assert_san_compatible(scenario.config)

    def test_matching_keeps_virus_pacing(self):
        for number in (1, 2, 3, 4):
            from repro.core.scenarios import virus_parameters

            original = virus_parameters(number)
            matched = matched_scenario(number).config.virus
            assert matched.min_send_interval == original.min_send_interval
            assert matched.extra_send_delay_mean == original.extra_send_delay_mean
            assert matched.message_limit is None
            assert matched.dormancy == 0.0
            assert matched.valid_number_fraction == 1.0

    def test_full_paper_scenario_is_rejected(self):
        config = baseline_scenario(1)  # real virus 1 carries a message budget
        problems = san_incompatibilities(config)
        assert problems
        with pytest.raises(SANCompatibilityError) as excinfo:
            assert_san_compatible(config)
        for problem in problems:
            assert problem in str(excinfo.value)

    def test_plateau_prediction_is_the_consent_fixed_point(self):
        scenario = matched_scenario(1, population=40)
        params = mean_field_for_scenario(scenario.config)
        plateau = expected_mean_field_plateau(params)
        eventual = total_acceptance_probability(
            scenario.config.user.acceptance_factor
        )
        assert plateau == pytest.approx(1.0 + 39.0 * eventual)


class TestDifferentialRun:
    def test_small_scenario_passes_all_gates(self):
        # One engine-agreement run in tier-1: virus 3 has the fastest pacing.
        verdict = run_differential_scenario(
            matched_scenario(3, population=30), replications=6
        )
        assert len(verdict.gates) == 10
        assert verdict.passed, "\n".join(g.format() for g in verdict.gates)
        assert len(verdict.core_finals) == 6
        assert len(verdict.san_finals) == 6
        assert len(verdict.xl_finals) == 6
        assert verdict.plateau_prediction > 1.0
        payload = verdict.to_dict()
        assert payload["passed"] is True
        assert {g["name"] for g in payload["gates"]} == {
            "core-vs-san mean",
            "core-vs-san welch",
            "core-vs-san rank",
            "core-vs-meanfield plateau",
            "san-vs-meanfield plateau",
            "core-vs-xl mean",
            "core-vs-xl welch",
            "core-vs-xl rank",
            "xl-vs-meanfield plateau",
            "core-vs-meanfield growth",
        }

    def test_deterministic_given_seed(self):
        scenario = matched_scenario(3, population=24)
        one = run_differential_scenario(scenario, seed=5, replications=3)
        two = run_differential_scenario(scenario, seed=5, replications=3)
        assert one.core_finals == two.core_finals
        assert one.san_finals == two.san_finals
        assert one.xl_finals == two.xl_finals

    def test_impossible_tolerances_fail(self):
        strict = Tolerances(
            mean_absolute_floor=0.0,
            mean_se_multiplier=1e-9,
            plateau_rel_tolerance=1e-9,
            growth_ratio_low=0.999,
            growth_ratio_high=1.001,
        )
        verdict = run_differential_scenario(
            matched_scenario(3, population=24),
            replications=3,
            tolerances=strict,
        )
        assert not verdict.passed

    def test_replication_floor(self):
        with pytest.raises(ValueError, match="2 replications"):
            run_differential_scenario(matched_scenario(3), replications=1)

    def test_campaign_report_mentions_tolerances(self):
        result = run_campaign(
            scenarios=[matched_scenario(3, population=24)], replications=3
        )
        report = result.format_report()
        assert "declared tolerances" in report
        assert "virus3-matched" in report
        assert result.seed == VALIDATION_SEED

    @pytest.mark.validation
    def test_full_baseline_campaign_passes(self):
        result = run_campaign()
        assert result.passed, result.format_report()
        assert len(result.verdicts) == 4


class TestCli:
    def test_run_subset_with_json_output(self, tmp_path, capsys):
        out = tmp_path / "campaign.json"
        rc = validation_cli.main(
            [
                "run",
                "--virus",
                "3",
                "--replications",
                "4",
                "--population",
                "24",
                "--json",
                str(out),
            ]
        )
        captured = capsys.readouterr()
        assert rc == 0
        assert "virus3-matched" in captured.out
        payload = json.loads(out.read_text(encoding="utf-8"))
        assert payload["passed"] is True
        assert [s["virus"] for s in payload["scenarios"]] == [3]

    def test_run_rejects_unknown_virus(self):
        with pytest.raises(SystemExit):
            validation_cli.main(["run", "--virus", "9"])


class TestFrontierDifferential:
    """Core-vs-xl frontier agreement, gated against the mean field."""

    def test_matched_frontier_scenario_is_well_mixed(self):
        from repro.core.parameters import BlacklistConfig, Targeting
        from repro.validation.scenarios import frontier_matched_scenario

        matched = frontier_matched_scenario(1, BlacklistConfig(threshold=3))
        config = matched.config
        assert config.virus.targeting is Targeting.RANDOM_DIALING
        assert config.virus.valid_number_fraction == 1.0
        assert config.network.susceptible_fraction == 1.0
        assert config.user.read_delay_mean == 0.0
        assert config.network.gateway_delay_mean == 0.0
        assert len(config.responses) == 1

    def test_interval_gate_shapes(self):
        from repro.validation.differential import _interval_gate

        inside = _interval_gate(5.0, 0.0, 10.0, 0.0, "inside")
        assert inside.passed
        outside = _interval_gate(12.0, 0.0, 10.0, 1.0, "outside")
        assert not outside.passed
        rescued = _interval_gate(12.0, 0.0, 10.0, 3.0, "rescued")
        assert rescued.passed

    @pytest.mark.validation
    def test_frontier_gate_passes_at_paper_population(self):
        """Satellite gate: core and xl must agree on the critical latency
        of the matched virus-1 blacklist frontier at N=1000, and both
        brackets must admit the delayed-response mean-field estimate."""
        from repro.validation.differential import run_frontier_differential

        report = run_frontier_differential()
        assert report.passed, report.format_report()
        assert report.core.status == "converged"
        assert report.xl.status == "converged"
        payload = report.to_dict()
        assert payload["passed"] is True
        assert {g["name"] for g in payload["gates"]} == {
            "core-vs-xl critical latency",
            "xl critical in core confidence bracket",
            "core critical in xl confidence bracket",
            "mean-field critical in core confidence bracket",
            "mean-field critical in xl confidence bracket",
        }
