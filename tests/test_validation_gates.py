"""Unit tests for the statistical acceptance gates and their stats helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.stats import mann_whitney_u, mean_difference_ci, welch_t_test
from repro.validation.gates import (
    GateResult,
    all_pass,
    failures,
    mean_equivalence_gate,
    prediction_gate,
    rank_gate,
    ratio_gate,
    welch_gate,
)


class TestStatsHelpers:
    def test_mean_difference_ci_centred_on_difference(self):
        rng = np.random.default_rng(1)
        a = rng.normal(10.0, 1.0, size=200)
        b = rng.normal(7.0, 1.0, size=200)
        diff, lower, upper = mean_difference_ci(a, b)
        assert lower < diff < upper
        assert diff == pytest.approx(3.0, abs=0.4)
        assert upper - lower < 1.0

    def test_mean_difference_ci_contains_truth_for_equal_means(self):
        rng = np.random.default_rng(2)
        a = rng.normal(5.0, 2.0, size=60)
        b = rng.normal(5.0, 0.5, size=25)  # unequal variance and size
        _, lower, upper = mean_difference_ci(a, b)
        assert lower < 0.0 < upper

    def test_mean_difference_ci_degenerate_identical(self):
        diff, lower, upper = mean_difference_ci([4.0, 4.0, 4.0], [4.0, 4.0])
        assert diff == lower == upper == 0.0

    def test_mean_difference_ci_needs_two_observations(self):
        with pytest.raises(ValueError):
            mean_difference_ci([1.0], [2.0, 3.0])

    def test_mann_whitney_detects_shift(self):
        a = [float(v) for v in range(20)]
        b = [float(v) + 30.0 for v in range(20)]
        _, p = mann_whitney_u(a, b)
        assert p < 0.001

    def test_mann_whitney_handles_ties_and_constants(self):
        _, p = mann_whitney_u([3.0, 3.0, 3.0], [3.0, 3.0, 3.0])
        assert p == 1.0
        # heavy ties, same location: should not reject
        _, p = mann_whitney_u([3.0, 3.0, 4.0, 4.0], [3.0, 4.0, 4.0, 3.0])
        assert p > 0.1


class TestGates:
    def test_mean_equivalence_passes_within_floor(self):
        gate = mean_equivalence_gate([10.0, 11.0], [12.0, 12.5], absolute_margin=3.0)
        assert gate.passed
        assert "allowance" in gate.detail

    def test_mean_equivalence_fails_far_apart(self):
        a = [10.0, 10.1, 9.9, 10.0]
        b = [30.0, 30.2, 29.8, 30.0]
        gate = mean_equivalence_gate(a, b, absolute_margin=3.0)
        assert not gate.passed
        assert gate.statistic == pytest.approx(-20.0, abs=0.2)

    def test_mean_equivalence_se_term_widens_allowance(self):
        # Noisy samples: the SE term dominates the small floor.
        rng = np.random.default_rng(3)
        a = list(rng.normal(50.0, 15.0, size=5))
        b = list(rng.normal(52.0, 15.0, size=5))
        gate = mean_equivalence_gate(a, b, absolute_margin=0.1, se_multiplier=3.0)
        assert gate.threshold > 0.1

    def test_welch_gate_agrees_and_disagrees(self):
        rng = np.random.default_rng(4)
        same = list(rng.normal(10, 2, size=30))
        also_same = list(rng.normal(10, 2, size=30))
        far = list(rng.normal(20, 2, size=30))
        assert welch_gate(same, also_same).passed
        assert not welch_gate(same, far).passed

    @pytest.mark.filterwarnings("ignore:Precision loss:RuntimeWarning")
    def test_welch_gate_constant_samples(self):
        assert welch_gate([5.0, 5.0, 5.0], [5.0, 5.0]).passed
        # zero variance, different means: must fail, not error
        assert not welch_gate([5.0, 5.0, 5.0], [9.0, 9.0, 9.0]).passed

    def test_rank_gate(self):
        assert rank_gate([1.0, 2.0, 3.0, 4.0], [1.5, 2.5, 3.5, 3.0]).passed
        a = [float(v) for v in range(15)]
        b = [float(v) + 40.0 for v in range(15)]
        assert not rank_gate(a, b).passed

    def test_prediction_gate_allows_ci_noise(self):
        # mean 12 vs predicted 10 with 10% tolerance: 1.0 margin alone would
        # fail, but the wide CI of a noisy sample must widen the allowance.
        samples = [6.0, 18.0, 9.0, 15.0]
        gate = prediction_gate(samples, predicted=10.0, rel_tolerance=0.1)
        assert gate.passed

    def test_prediction_gate_fails_clear_mismatch(self):
        samples = [30.0, 30.5, 29.5, 30.2]
        gate = prediction_gate(samples, predicted=10.0, rel_tolerance=0.2)
        assert not gate.passed

    def test_ratio_gate_band(self):
        assert ratio_gate(2.0, 1.0, low=0.5, high=4.0).passed
        assert not ratio_gate(9.0, 1.0, low=0.5, high=4.0).passed
        assert not ratio_gate(None, 1.0, low=0.5, high=4.0).passed
        assert not ratio_gate(1.0, None, low=0.5, high=4.0).passed

    def test_gate_validation_errors(self):
        with pytest.raises(ValueError):
            mean_equivalence_gate([1.0, 2.0], [1.0, 2.0], absolute_margin=-1.0)
        with pytest.raises(ValueError):
            welch_gate([1.0, 2.0], [1.0, 2.0], alpha=1.5)
        with pytest.raises(ValueError):
            prediction_gate([1.0, 2.0], predicted=1.0, rel_tolerance=0.0)
        with pytest.raises(ValueError):
            ratio_gate(1.0, 1.0, low=2.0, high=1.0)

    def test_all_pass_and_failures(self):
        good = GateResult("g", True, 0.0, 1.0, "ok")
        bad = GateResult("b", False, 9.0, 1.0, "no")
        assert all_pass([good])
        assert not all_pass([good, bad])
        assert failures([good, bad]) == [bad]
        assert "[FAIL] b" in bad.format()
        assert "[PASS] g" in good.format()
