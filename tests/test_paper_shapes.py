"""Paper-level qualitative shape tests, at reduced scale for speed.

These assert the paper's headline claims on a 300-phone network with
proportionally scaled contact lists — the full-scale versions run in the
benchmark harness (one bench per figure).
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.core import (
    BlacklistConfig,
    DetectionAlgorithmConfig,
    GatewayScanConfig,
    ImmunizationConfig,
    MonitoringConfig,
    NetworkParameters,
    UserEducationConfig,
    baseline_scenario,
)
from repro.core.simulation import run_scenario

NETWORK = NetworkParameters(population=300, mean_contact_list_size=24.0)
SUSCEPTIBLE = NETWORK.susceptible_count  # 240
EXPECTED_PLATEAU = SUSCEPTIBLE * 0.40  # = 96


def scaled_baseline(virus_number: int, duration=None):
    return baseline_scenario(virus_number, network=NETWORK, duration=duration)


@pytest.fixture(scope="module")
def baselines():
    """One baseline run per virus (module-scoped: reused across tests)."""
    return {v: run_scenario(scaled_baseline(v), seed=17) for v in (1, 2, 3, 4)}


class TestFigure1Shapes:
    def test_all_viruses_plateau_near_expected(self, baselines):
        for virus, result in baselines.items():
            assert result.total_infected == pytest.approx(
                EXPECTED_PLATEAU, rel=0.30
            ), f"virus {virus} plateau {result.total_infected}"

    def test_virus3_fastest(self, baselines):
        t3 = baselines[3].curve().time_to_reach(EXPECTED_PLATEAU / 2)
        t1 = baselines[1].curve().time_to_reach(EXPECTED_PLATEAU / 2)
        assert t3 < t1

    def test_virus3_saturates_within_24h(self, baselines):
        assert baselines[3].infected_at(24.0) > 0.8 * baselines[3].total_infected

    def test_virus1_spreads_over_days(self, baselines):
        curve = baselines[1].curve()
        assert curve.value_at(24.0) < 0.5 * curve.final_value
        assert curve.value_at(300.0) > 0.8 * curve.final_value

    def test_virus4_slower_start_than_virus1(self, baselines):
        """Virus 4's dormancy + traffic pacing delays its takeoff."""
        t1 = baselines[1].curve().time_to_reach(EXPECTED_PLATEAU / 4)
        t4 = baselines[4].curve().time_to_reach(EXPECTED_PLATEAU / 4)
        assert t4 > t1 * 0.8  # at least comparable; usually slower

    def test_virus2_steps(self, baselines):
        """Virus 2 grows in daily bursts: most growth lands just after
        the 24-hour boundaries."""
        curve = baselines[2].curve()
        total = curve.final_value - 1
        growth_near_boundaries = 0.0
        for day in range(10):
            start = day * 24.0
            growth_near_boundaries += curve.value_at(start + 6.0) - curve.value_at(
                start
            )
        assert growth_near_boundaries / total > 0.6


class TestResponseClaims:
    def test_scan_effective_on_virus1_useless_on_virus3(self, baselines):
        scan = GatewayScanConfig(activation_delay=6.0)
        contained = run_scenario(
            scaled_baseline(1).with_responses(scan), seed=17
        )
        assert contained.total_infected < 0.4 * baselines[1].total_infected
        rapid = run_scenario(scaled_baseline(3).with_responses(scan), seed=17)
        assert rapid.total_infected > 0.8 * baselines[3].total_infected

    def test_scan_delay_ordering(self, baselines):
        finals = []
        for delay in (6.0, 12.0, 24.0):
            result = run_scenario(
                scaled_baseline(1).with_responses(GatewayScanConfig(delay)), seed=17
            )
            finals.append(result.total_infected)
        assert finals[0] <= finals[1] <= finals[2] <= baselines[1].total_infected

    def test_detection_algorithm_slows_virus2(self, baselines):
        result = run_scenario(
            scaled_baseline(2).with_responses(DetectionAlgorithmConfig(0.95)),
            seed=17,
        )
        level = 0.4 * baselines[2].total_infected
        base_time = baselines[2].curve().time_to_reach(level)
        slow_time = result.curve().time_to_reach(level)
        assert slow_time is None or slow_time > base_time + 24.0

    def test_education_roughly_halves_every_virus(self, baselines):
        education = UserEducationConfig(acceptance_scale=0.5)
        for virus in (1, 2, 3, 4):
            result = run_scenario(
                scaled_baseline(virus).with_responses(education), seed=17
            )
            ratio = result.total_infected / baselines[virus].total_infected
            assert 0.25 <= ratio <= 0.8, f"virus {virus}: {ratio:.2f}"

    def test_immunization_effective_on_virus4_useless_on_virus3(self, baselines):
        config = ImmunizationConfig(development_time=24.0, deployment_window=1.0)
        slow = run_scenario(scaled_baseline(4).with_responses(config), seed=17)
        assert slow.total_infected < 0.6 * baselines[4].total_infected
        rapid = run_scenario(scaled_baseline(3).with_responses(config), seed=17)
        assert rapid.total_infected > 0.8 * baselines[3].total_infected

    def test_immunization_deploy_window_ordering(self):
        finals = []
        for window in (1.0, 24.0):
            result = run_scenario(
                scaled_baseline(4).with_responses(
                    ImmunizationConfig(development_time=24.0, deployment_window=window)
                ),
                seed=17,
            )
            finals.append(result.total_infected)
        assert finals[0] <= finals[1]

    def test_monitoring_slows_virus3_not_virus1(self, baselines):
        config = MonitoringConfig(forced_wait=0.25)
        throttled = run_scenario(scaled_baseline(3).with_responses(config), seed=17)
        level = 0.5 * baselines[3].total_infected
        base_time = baselines[3].curve().time_to_reach(level)
        slow_time = throttled.curve().time_to_reach(level)
        assert slow_time is None or slow_time > base_time
        untouched = run_scenario(scaled_baseline(1).with_responses(config), seed=17)
        assert untouched.total_infected > 0.85 * baselines[1].total_infected

    def test_blacklist_strongest_on_virus3_useless_on_virus2(self, baselines):
        config = BlacklistConfig(threshold=10)
        contained = run_scenario(scaled_baseline(3).with_responses(config), seed=17)
        assert contained.total_infected < 0.5 * baselines[3].total_infected
        untouched = run_scenario(scaled_baseline(2).with_responses(config), seed=17)
        assert untouched.total_infected > 0.85 * baselines[2].total_infected

    def test_blacklist_threshold_ordering_on_virus3(self, baselines):
        finals = []
        for threshold in (10, 20, 40):
            result = run_scenario(
                scaled_baseline(3).with_responses(BlacklistConfig(threshold)),
                seed=17,
            )
            finals.append(result.total_infected)
        assert finals[0] <= finals[1] <= finals[2] + 5
