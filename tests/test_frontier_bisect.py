"""Property tests for the frontier bisection core.

:func:`repro.frontier.bisect.bisect_threshold` is the pure solver under
every frontier sweep, so its contract is pinned with hypothesis-driven
monotone predicates (``x <= critical``):

* the bracket narrows on every interior step and stays nested;
* a converged final interval is no wider than the tolerance and
  contains the true critical value;
* the probe count never exceeds ``max_probes`` — two endpoint probes
  plus one per halving of the range down to the tolerance;
* identical inputs produce identical probe sequences (determinism);
* the degenerate all-escaped / all-contained outcomes return after the
  single endpoint probe that proved them.
"""

from __future__ import annotations

import math

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.frontier.bisect import (  # noqa: E402
    STATUS_ALL_CONTAINED,
    STATUS_ALL_ESCAPED,
    STATUS_CONVERGED,
    BisectionResult,
    bisect_threshold,
    max_probes,
)

# Moderate magnitudes keep float ulps (~1e-13 at this scale) far below
# the smallest tolerance, so halving is effectively exact and the probe
# bound is tight.
LOWS = st.floats(
    min_value=-1000.0, max_value=1000.0, allow_nan=False, allow_infinity=False
)
WIDTHS = st.floats(
    min_value=0.01, max_value=2000.0, allow_nan=False, allow_infinity=False
)
TOLERANCES = st.floats(
    min_value=1e-3, max_value=100.0, allow_nan=False, allow_infinity=False
)
FRACTIONS = st.floats(
    min_value=0.0, max_value=1.0, allow_nan=False, allow_infinity=False
)


def _case(low, width, tolerance, fraction):
    """One bisection problem: bracket, tolerance, and a true critical."""
    high = low + width
    critical = low + fraction * width
    return low, high, tolerance, critical


class TestConvergence:
    @given(low=LOWS, width=WIDTHS, tolerance=TOLERANCES, fraction=FRACTIONS)
    @settings(max_examples=200, deadline=None)
    def test_monotone_predicate_converges_in_bound(
        self, low, width, tolerance, fraction
    ):
        low, high, tolerance, critical = _case(low, width, tolerance, fraction)
        result = bisect_threshold(lambda x: x <= critical, low, high, tolerance)
        assert result.probe_count <= max_probes(low, high, tolerance)
        if critical < low:
            assert result.status == STATUS_ALL_ESCAPED
        elif critical >= high:
            assert result.status == STATUS_ALL_CONTAINED
        else:
            assert result.status == STATUS_CONVERGED
            assert result.width <= tolerance
            # Contained at the final low, escaped at the final high.
            assert result.low <= critical < result.high or math.isclose(
                result.high, critical
            )
            assert result.low <= result.critical <= result.high

    @given(low=LOWS, width=WIDTHS, tolerance=TOLERANCES, fraction=FRACTIONS)
    @settings(max_examples=200, deadline=None)
    def test_bracket_narrows_and_stays_nested(
        self, low, width, tolerance, fraction
    ):
        low, high, tolerance, critical = _case(low, width, tolerance, fraction)
        result = bisect_threshold(lambda x: x <= critical, low, high, tolerance)
        # The first two steps are the endpoint probes over the full
        # bracket; every interior step must see a strictly narrower,
        # nested bracket than its predecessor.
        interior = result.steps[2:]
        previous = None
        for step in interior:
            assert low <= step.low < step.high <= high
            assert step.low < step.probe < step.high
            if previous is not None:
                assert step.high - step.low < previous.high - previous.low
                assert step.low >= previous.low
                assert step.high <= previous.high
            previous = step

    @given(low=LOWS, width=WIDTHS, tolerance=TOLERANCES, fraction=FRACTIONS)
    @settings(max_examples=100, deadline=None)
    def test_deterministic(self, low, width, tolerance, fraction):
        low, high, tolerance, critical = _case(low, width, tolerance, fraction)
        first = bisect_threshold(lambda x: x <= critical, low, high, tolerance)
        second = bisect_threshold(lambda x: x <= critical, low, high, tolerance)
        assert first == second  # identical brackets, statuses, and steps

    @given(low=LOWS, width=WIDTHS, fraction=FRACTIONS)
    @settings(max_examples=50, deadline=None)
    def test_wide_tolerance_stops_at_endpoints(self, low, width, fraction):
        low, high, tolerance, critical = _case(
            low, width, 2.0 * width + 1.0, fraction
        )
        result = bisect_threshold(lambda x: x <= critical, low, high, tolerance)
        assert result.probe_count == 2 or result.status == STATUS_ALL_ESCAPED


class TestDegenerate:
    def test_all_escaped_after_one_probe(self):
        result = bisect_threshold(lambda x: False, 0.0, 10.0, 1.0)
        assert result.status == STATUS_ALL_ESCAPED
        assert result.probe_count == 1
        assert result.low == result.high == 0.0
        assert not result.converged

    def test_all_contained_after_two_probes(self):
        result = bisect_threshold(lambda x: True, 0.0, 10.0, 1.0)
        assert result.status == STATUS_ALL_CONTAINED
        assert result.probe_count == 2
        assert result.low == result.high == 10.0
        assert not result.converged

    def test_steps_record_verdicts(self):
        result = bisect_threshold(lambda x: x <= 3.0, 0.0, 8.0, 1.0)
        assert result.converged
        assert result.steps[0].probe == 0.0 and result.steps[0].contained
        assert result.steps[1].probe == 8.0 and not result.steps[1].contained
        for step in result.steps:
            assert step.to_dict() == {
                "low": step.low,
                "high": step.high,
                "probe": step.probe,
                "contained": step.contained,
            }


class TestValidation:
    def test_rejects_inverted_bracket(self):
        with pytest.raises(ValueError, match="low < high"):
            bisect_threshold(lambda x: True, 5.0, 5.0, 1.0)
        with pytest.raises(ValueError, match="low < high"):
            bisect_threshold(lambda x: True, 7.0, 5.0, 1.0)

    def test_rejects_nonpositive_tolerance(self):
        with pytest.raises(ValueError, match="tolerance"):
            bisect_threshold(lambda x: True, 0.0, 1.0, 0.0)
        with pytest.raises(ValueError, match="tolerance"):
            bisect_threshold(lambda x: True, 0.0, 1.0, -1.0)

    def test_rejects_infinite_endpoints(self):
        with pytest.raises(ValueError, match="finite"):
            bisect_threshold(lambda x: True, 0.0, math.inf, 1.0)

    def test_max_probes_floor(self):
        assert max_probes(0.0, 1.0, 2.0) == 2  # range already inside tol
        assert max_probes(0.0, 8.0, 1.0) == 5  # 2 endpoints + 3 halvings

    def test_result_properties(self):
        result = BisectionResult(
            low=2.0, high=4.0, status=STATUS_CONVERGED, steps=()
        )
        assert result.critical == 3.0
        assert result.width == 2.0
        assert result.converged
