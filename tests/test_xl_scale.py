"""Large-population smoke tests for the xl engine (slow marker).

One seeded N=100k campaign under an explicit memory ceiling: the point of
the xl engine is populations the object kernel cannot hold, so this
asserts the engine actually delivers that scale — bounded peak RSS,
sane epidemic shape — rather than merely not crashing.

Excluded from tier-1 (and from the validation/bench suites); run with
``-m slow``.  CI gives these a dedicated job.
"""

from __future__ import annotations

import resource

import numpy as np
import pytest

from repro.core.simulation import run_scenario
from repro.xl import xl_scenario

pytestmark = pytest.mark.slow

#: Peak-RSS ceiling for the N=100k run, in MiB.  The run measures ~550 MiB
#: (dominated by the 8M-edge CSR build); the ceiling is a regression
#: tripwire against accidental per-phone object allocation, not a tight
#: budget.
RSS_CEILING_MIB = 1536


def _peak_rss_mib() -> float:
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


@pytest.fixture(scope="module")
def hundred_k_result():
    config = xl_scenario(1, "xl-100k", duration=96.0)
    return run_scenario(config, seed=2007)


def test_100k_population_run_within_memory_ceiling(hundred_k_result):
    result = hundred_k_result
    peak = _peak_rss_mib()
    assert peak < RSS_CEILING_MIB, (
        f"N=100k run peaked at {peak:.0f} MiB (ceiling {RSS_CEILING_MIB} MiB)"
    )

    assert result.population == 100_000
    assert result.total_infected > 100, "epidemic failed to take off"
    assert result.total_infected <= result.susceptible_count

    # The cumulative infection curve is monotone with exact timestamps.
    times = np.asarray(result.infection_times)
    assert times.size == result.total_infected
    assert np.all(np.diff(times) >= 0.0)
    assert times[0] == 0.0
    assert times[-1] <= result.final_time

    counters = result.counters
    assert counters["messages_sent"] > 0
    assert counters["xl_rounds"] >= 1
    assert counters["deliveries"] >= counters["attachments_accepted"]


def test_100k_detection_fires_early(hundred_k_result):
    """At 100k the 5th infection (detection) lands in the first hours."""
    result = hundred_k_result
    assert result.detection_time is not None
    assert 0.0 < result.detection_time < result.final_time
    # Detection is pinned to the 5th infection's exact timestamp.
    assert result.detection_time == pytest.approx(
        sorted(result.infection_times)[4]
    )
