"""Tests for Resource and Store queueing primitives."""

from __future__ import annotations

import pytest

from repro.des import Resource, Simulator, Store, Timeout, start_process
from repro.des.simulator import SimulationError


class TestResource:
    def test_capacity_limits_concurrency(self):
        sim = Simulator()
        resource = Resource(sim, capacity=2)
        active = []
        peaks = []

        def worker(name):
            yield resource.acquire()
            active.append(name)
            peaks.append(len(active))
            yield Timeout(1.0)
            active.remove(name)
            resource.release()

        for i in range(5):
            start_process(sim, worker(i))
        sim.run()
        assert max(peaks) == 2
        assert resource.in_use == 0

    def test_fifo_grant_order(self):
        sim = Simulator()
        resource = Resource(sim, capacity=1)
        order = []

        def worker(name, hold):
            yield resource.acquire()
            order.append(name)
            yield Timeout(hold)
            resource.release()

        for i in range(4):
            start_process(sim, worker(i, 1.0))
        sim.run()
        assert order == [0, 1, 2, 3]

    def test_release_without_acquire_rejected(self):
        sim = Simulator()
        resource = Resource(sim, capacity=1)
        with pytest.raises(SimulationError):
            resource.release()

    def test_invalid_capacity(self):
        with pytest.raises(SimulationError):
            Resource(Simulator(), capacity=0)

    def test_queue_length_statistics(self):
        sim = Simulator()
        resource = Resource(sim, capacity=1)

        def worker():
            yield resource.acquire()
            yield Timeout(1.0)
            resource.release()

        for _ in range(3):
            start_process(sim, worker())
        sim.run(until=0.5)
        assert resource.max_queue_length == 2


class TestStore:
    def test_put_then_get(self):
        sim = Simulator()
        store = Store(sim)
        got = []

        def consumer():
            item = yield store.get()
            got.append(item)

        store.put("x")
        start_process(sim, consumer())
        sim.run()
        assert got == ["x"]

    def test_get_blocks_until_put(self):
        sim = Simulator()
        store = Store(sim)
        got = []

        def consumer():
            item = yield store.get()
            got.append((sim.now, item))

        def producer():
            yield Timeout(3.0)
            yield store.put("late")

        start_process(sim, consumer())
        start_process(sim, producer())
        sim.run()
        assert got == [(3.0, "late")]

    def test_fifo_item_order(self):
        sim = Simulator()
        store = Store(sim)
        for item in ("a", "b", "c"):
            store.put(item)
        got = []

        def consumer():
            for _ in range(3):
                item = yield store.get()
                got.append(item)

        start_process(sim, consumer())
        sim.run()
        assert got == ["a", "b", "c"]

    def test_bounded_store_blocks_put(self):
        sim = Simulator()
        store = Store(sim, capacity=1)
        timeline = []

        def producer():
            yield store.put("one")
            timeline.append(("put1", sim.now))
            yield store.put("two")  # blocks until a get frees space
            timeline.append(("put2", sim.now))

        def consumer():
            yield Timeout(5.0)
            item = yield store.get()
            timeline.append(("got", sim.now, item))

        start_process(sim, producer())
        start_process(sim, consumer())
        sim.run()
        assert ("put1", 0.0) in timeline
        got_entry = next(t for t in timeline if t[0] == "got")
        put2_entry = next(t for t in timeline if t[0] == "put2")
        assert got_entry[1] == 5.0
        assert put2_entry[1] >= 5.0

    def test_total_put_counts(self):
        sim = Simulator()
        store = Store(sim)
        store.put(1)
        store.put(2)
        assert store.total_put == 2
        assert len(store) == 2

    def test_invalid_capacity(self):
        with pytest.raises(SimulationError):
            Store(Simulator(), capacity=0)

    def test_handoff_to_waiting_getter(self):
        sim = Simulator()
        store = Store(sim)
        got = []

        def consumer():
            item = yield store.get()
            got.append(item)

        start_process(sim, consumer())
        sim.run()  # consumer now blocked
        assert store.getters_waiting == 1
        store.put("direct")
        sim.run()
        assert got == ["direct"]
