"""Tests for ScenarioResult serialization and the disk-backed result cache."""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.core import (
    NetworkParameters,
    ResultCache,
    ScenarioConfig,
    UserParameters,
    VirusParameters,
    result_from_dict,
    result_key,
    result_to_dict,
    run_scenario,
)
from repro.core.serialization import SerializationError


@pytest.fixture
def tiny_config() -> ScenarioConfig:
    return ScenarioConfig(
        name="cache-test",
        virus=VirusParameters(
            name="cache-virus", min_send_interval=0.05, extra_send_delay_mean=0.05
        ),
        network=NetworkParameters(population=60, mean_contact_list_size=8.0),
        user=UserParameters(read_delay_mean=0.1),
        duration=4.0,
    )


@pytest.fixture
def tiny_result(tiny_config):
    return run_scenario(tiny_config, seed=3, replication=1)


class TestResultSerialization:
    def test_round_trip_is_exact(self, tiny_result):
        restored = result_from_dict(result_to_dict(tiny_result))
        assert restored.config == tiny_result.config
        assert restored.seed == tiny_result.seed
        assert restored.replication == tiny_result.replication
        assert restored.final_time == tiny_result.final_time
        assert restored.infection_times == tiny_result.infection_times
        assert restored.counters == tiny_result.counters
        assert restored.response_stats == tiny_result.response_stats
        assert restored.detection_time == tiny_result.detection_time
        assert restored.patient_zero == tiny_result.patient_zero
        assert restored.susceptible_count == tiny_result.susceptible_count
        assert restored.population == tiny_result.population

    def test_round_trip_through_json_text(self, tiny_result):
        text = json.dumps(result_to_dict(tiny_result))
        restored = result_from_dict(json.loads(text))
        assert restored.infection_times == tiny_result.infection_times
        assert restored.final_time == tiny_result.final_time

    def test_bad_version_rejected(self, tiny_result):
        document = result_to_dict(tiny_result)
        document["format_version"] = 99
        with pytest.raises(SerializationError, match="format_version"):
            result_from_dict(document)

    def test_missing_keys_rejected(self, tiny_result):
        document = result_to_dict(tiny_result)
        del document["infection_times"]
        with pytest.raises(SerializationError, match="missing"):
            result_from_dict(document)

    def test_non_dict_rejected(self):
        with pytest.raises(SerializationError):
            result_from_dict([1, 2, 3])


class TestResultKey:
    def test_stable(self, tiny_config):
        assert result_key(tiny_config, 3, 1) == result_key(tiny_config, 3, 1)

    def test_varies_with_inputs(self, tiny_config):
        base = result_key(tiny_config, 3, 1)
        assert result_key(tiny_config, 4, 1) != base
        assert result_key(tiny_config, 3, 2) != base
        changed = dataclasses.replace(tiny_config, duration=5.0)
        assert result_key(changed, 3, 1) != base

    def test_varies_with_schema_version(self, tiny_config):
        assert result_key(tiny_config, 3, 1, schema_version=1) != result_key(
            tiny_config, 3, 1, schema_version=2
        )

    def test_response_config_changes_key(self, tiny_config):
        from repro.core import UserEducationConfig

        with_response = tiny_config.with_responses(
            UserEducationConfig(acceptance_scale=0.5), suffix="edu"
        )
        assert result_key(with_response, 3, 1) != result_key(tiny_config, 3, 1)


class TestResultCache:
    def test_miss_then_hit(self, tiny_config, tiny_result, tmp_path):
        cache = ResultCache(tmp_path / "c")
        assert cache.get(tiny_config, 3, 1) is None
        assert cache.misses == 1
        cache.put(tiny_result)
        assert cache.writes == 1
        restored = cache.get(tiny_config, 3, 1)
        assert restored is not None
        assert cache.hits == 1
        assert restored.infection_times == tiny_result.infection_times
        assert restored.counters == tiny_result.counters

    def test_len_and_clear(self, tiny_result, tmp_path):
        cache = ResultCache(tmp_path / "c")
        assert len(cache) == 0
        cache.put(tiny_result)
        assert len(cache) == 1
        assert cache.clear() == 1
        assert len(cache) == 0

    def test_corrupt_entry_is_miss_and_healed(
        self, tiny_config, tiny_result, tmp_path
    ):
        cache = ResultCache(tmp_path / "c")
        path = cache.put(tiny_result)
        path.write_text("{ this is not json")
        assert cache.get(tiny_config, 3, 1) is None
        assert cache.misses == 1
        assert not path.exists()  # corrupt entry quarantined away
        assert cache.quarantined == 1
        cache.put(tiny_result)
        assert cache.get(tiny_config, 3, 1) is not None

    def test_bit_flip_is_quarantined_not_served(
        self, tiny_config, tiny_result, tmp_path
    ):
        # A flipped byte inside the payload still parses as JSON — only
        # the embedded checksum catches it.
        from repro.faults import corrupt_cache_entry

        cache = ResultCache(tmp_path / "c")
        cache.put(tiny_result)
        path = corrupt_cache_entry(cache, tiny_config, 3, 1)
        assert cache.get(tiny_config, 3, 1) is None
        assert cache.misses == 1
        assert not path.exists()
        quarantined = list(cache.quarantine_paths())
        assert len(quarantined) == 1
        assert quarantined[0].name == path.name  # bytes kept for forensics
        # The slot heals on the next put; quarantined bytes never count
        # as entries.
        cache.put(tiny_result)
        assert cache.get(tiny_config, 3, 1) is not None
        assert len(cache) == 1

    def test_checksum_mismatch_detected(self, tiny_config, tiny_result, tmp_path):
        cache = ResultCache(tmp_path / "c")
        path = cache.put(tiny_result)
        document = json.loads(path.read_text())
        document["result"]["final_time"] = document["result"]["final_time"] + 1.0
        path.write_text(json.dumps(document))  # valid JSON, tampered payload
        assert cache.get(tiny_config, 3, 1) is None
        assert cache.quarantined == 1

    def test_wrong_schema_inside_document_is_miss(
        self, tiny_config, tiny_result, tmp_path
    ):
        cache = ResultCache(tmp_path / "c")
        path = cache.put(tiny_result)
        document = json.loads(path.read_text())
        document["result"]["format_version"] = 99
        path.write_text(json.dumps(document))
        assert cache.get(tiny_config, 3, 1) is None

    def test_stats(self, tiny_config, tiny_result, tmp_path):
        cache = ResultCache(tmp_path / "c")
        cache.get(tiny_config, 3, 1)
        cache.put(tiny_result)
        cache.get(tiny_config, 3, 1)
        assert cache.stats() == {
            "hits": 1,
            "misses": 1,
            "writes": 1,
            "quarantined": 0,
            "entries": 1,
            "tmp_files": 0,
            "quarantine_files": 0,
        }

    def test_missing_root_dir_is_empty(self, tmp_path):
        cache = ResultCache(tmp_path / "never-created")
        assert len(cache) == 0
        assert cache.clear() == 0


class TestTmpHygiene:
    """Regression: orphaned ``.tmp-*.json`` files from interrupted atomic
    writes used to be counted as cache entries (pathlib globs match
    dot-prefixed names, unlike shell globs)."""

    @staticmethod
    def _plant_orphan(cache, tiny_result):
        entry = cache.put(tiny_result)
        orphan = entry.parent / ".tmp-interrupted0.json"
        orphan.write_text("{partial write")
        return entry, orphan

    def test_orphans_excluded_from_len_and_entries(self, tiny_result, tmp_path):
        cache = ResultCache(tmp_path / "c")
        self._plant_orphan(cache, tiny_result)
        assert len(cache) == 1
        stats = cache.stats()
        assert stats["entries"] == 1
        assert stats["tmp_files"] == 1

    def test_sweep_removes_only_orphans(
        self, tiny_config, tiny_result, tmp_path
    ):
        cache = ResultCache(tmp_path / "c")
        entry, orphan = self._plant_orphan(cache, tiny_result)
        assert cache.sweep() == 1
        assert not orphan.exists()
        assert entry.exists()
        assert cache.get(tiny_config, 3, 1) is not None  # entry still readable
        assert cache.sweep() == 0

    def test_clear_counts_entries_not_orphans(self, tiny_result, tmp_path):
        cache = ResultCache(tmp_path / "c")
        _, orphan = self._plant_orphan(cache, tiny_result)
        assert cache.clear() == 1  # one real entry; the orphan is uncounted
        assert not orphan.exists()
        assert cache.stats()["tmp_files"] == 0

    def test_sweep_on_missing_root(self, tmp_path):
        assert ResultCache(tmp_path / "never-created").sweep() == 0


class TestDefaultCacheDir:
    """Regression: the default cache dir resolved relative to whatever the
    CWD happened to be; it is now always returned absolute, and the env
    override expands ``~`` and ``$VARS``."""

    def test_default_is_absolute_and_cwd_anchored(self, tmp_path, monkeypatch):
        from repro.core.cache import CACHE_DIR_ENV, default_cache_dir

        monkeypatch.delenv(CACHE_DIR_ENV, raising=False)
        monkeypatch.chdir(tmp_path)
        resolved = default_cache_dir()
        assert resolved.is_absolute()
        assert resolved == (tmp_path / ".repro-cache").resolve()

    def test_env_override_expands_vars_and_user(self, tmp_path, monkeypatch):
        from repro.core.cache import CACHE_DIR_ENV, default_cache_dir

        monkeypatch.setenv("REPRO_TEST_BASE", str(tmp_path))
        monkeypatch.setenv(CACHE_DIR_ENV, "$REPRO_TEST_BASE/cache-here")
        assert default_cache_dir() == (tmp_path / "cache-here").resolve()
