"""Supervised worker pool: crash/hang/corruption recovery, byte-identically.

The fast serial-path tests run in tier-1; everything that injures real
worker processes carries the ``faultinject`` marker (deselected by
default, run with ``-m faultinject``).
"""

from __future__ import annotations

import json

import pytest

from repro.core import (
    NetworkParameters,
    ResultCache,
    ScenarioConfig,
    UserParameters,
    VirusParameters,
)
from repro.core.simulation import replicate_scenario
from repro.experiments import ReplicationScheduler
from repro.faults import FaultPlan, FaultSpec
from repro.obs.manifest import read_manifests, validate_manifest
from repro.resilience import RetryPolicy


@pytest.fixture
def mini_scenario() -> ScenarioConfig:
    return ScenarioConfig(
        name="sup-mini",
        virus=VirusParameters(
            name="sup-virus", min_send_interval=0.05, extra_send_delay_mean=0.05
        ),
        network=NetworkParameters(population=80, mean_contact_list_size=10.0),
        user=UserParameters(read_delay_mean=0.1),
        duration=6.0,
    )


FAST_POLICY = RetryPolicy(max_retries=2, backoff_base=0.01, backoff_cap=0.05)


def _times(result_set):
    return [r.infection_times for r in result_set.results]


class TestSerialSupervised:
    """processes=1 supervised dispatch is the plain serial path plus
    bookkeeping — results must be bit-identical, and soft faults must be
    retried in-process."""

    def test_identical_to_unsupervised(self, mini_scenario):
        expected = replicate_scenario(mini_scenario, replications=3, seed=9)
        with ReplicationScheduler(resilience=FAST_POLICY) as scheduler:
            got = scheduler.replicate(mini_scenario, replications=3, seed=9)
        assert _times(got) == _times(expected)
        assert not scheduler.failures

    def test_soft_fault_retried(self, mini_scenario):
        expected = replicate_scenario(mini_scenario, replications=3, seed=9)
        plan = FaultPlan({1: FaultSpec(raise_attempts=(0,))})
        with ReplicationScheduler(
            resilience=FAST_POLICY, fault_plan=plan
        ) as scheduler:
            got = scheduler.replicate(mini_scenario, replications=3, seed=9)
        assert _times(got) == _times(expected)
        assert [(e.kind, e.action) for e in scheduler.failures] == [
            ("error", "retry")
        ]
        assert not scheduler.has_failures

    def test_quarantine_reported_not_raised(self, mini_scenario):
        plan = FaultPlan({2: FaultSpec(raise_attempts=tuple(range(10)))})
        with ReplicationScheduler(
            resilience=FAST_POLICY, fault_plan=plan
        ) as scheduler:
            got = scheduler.replicate(mini_scenario, replications=4, seed=9)
        assert got.replications == 3  # survivors only
        assert scheduler.has_failures
        assert scheduler.quarantined == [
            {
                "scenario": "sup-mini",
                "seed": 9,
                "replication": 2,
                "failures": FAST_POLICY.max_attempts,
            }
        ]
        summary = scheduler.failure_summary()
        assert summary and "sup-mini" in summary[0]


@pytest.mark.faultinject
class TestFaultInjection:
    """Real worker processes get crashed, hung, and corrupted."""

    def test_hard_crash_detected_and_retried(self, mini_scenario):
        expected = replicate_scenario(mini_scenario, replications=4, seed=9)
        plan = FaultPlan({0: FaultSpec(crash_attempts=(0,))})
        with ReplicationScheduler(
            processes=2, resilience=FAST_POLICY, fault_plan=plan
        ) as scheduler:
            got = scheduler.replicate(mini_scenario, replications=4, seed=9)
        assert _times(got) == _times(expected)
        kinds = [(e.kind, e.action) for e in scheduler.failures]
        assert ("crash", "retry") in kinds
        assert scheduler.pool_respawns >= 1

    def test_hang_timed_out_and_retried(self, mini_scenario):
        expected = replicate_scenario(mini_scenario, replications=4, seed=9)
        policy = RetryPolicy(
            max_retries=2, backoff_base=0.01, backoff_cap=0.05, task_timeout=2.0
        )
        plan = FaultPlan({1: FaultSpec(hang_attempts=(0,), hang_seconds=60.0)})
        with ReplicationScheduler(
            processes=2, resilience=policy, fault_plan=plan
        ) as scheduler:
            got = scheduler.replicate(mini_scenario, replications=4, seed=9)
        assert _times(got) == _times(expected)
        assert ("timeout", "retry") in [
            (e.kind, e.action) for e in scheduler.failures
        ]

    def test_no_zombies_or_fd_leaks_after_repeated_respawns(self, mini_scenario):
        """Shutdown hygiene: 3 forced respawns leak nothing.

        After a campaign whose fault plan hard-crashes three workers
        (three respawn cycles), the parent must be left with zero live
        child processes and the same number of open file descriptors it
        had after a clean warm-up run — a dead worker's Process object
        and its task queue both hold pipe FDs until explicitly closed.
        """
        import multiprocessing
        import os

        def open_fds() -> int:
            fd_dir = "/proc/self/fd"
            if not os.path.isdir(fd_dir):  # pragma: no cover - non-Linux
                pytest.skip("needs /proc to count file descriptors")
            return len(os.listdir(fd_dir))

        def reap_stragglers() -> None:
            for child in multiprocessing.active_children():
                child.join(timeout=5.0)

        # Warm-up run: pays one-time interpreter costs (resource tracker,
        # mp context) so the baseline FD count is stable.
        with ReplicationScheduler(processes=2, resilience=FAST_POLICY) as s:
            s.replicate(mini_scenario, replications=4, seed=9)
        reap_stragglers()
        assert multiprocessing.active_children() == []
        baseline = open_fds()

        plan = FaultPlan(
            {
                0: FaultSpec(crash_attempts=(0,)),
                1: FaultSpec(crash_attempts=(0,)),
                2: FaultSpec(crash_attempts=(0,)),
            }
        )
        with ReplicationScheduler(
            processes=2, resilience=FAST_POLICY, fault_plan=plan
        ) as scheduler:
            scheduler.replicate(mini_scenario, replications=4, seed=9)
        assert scheduler.pool_respawns >= 3
        reap_stragglers()
        assert multiprocessing.active_children() == []
        assert open_fds() <= baseline

    def test_repeated_pool_death_degrades_to_serial(self, mini_scenario):
        expected = replicate_scenario(mini_scenario, replications=4, seed=9)
        policy = RetryPolicy(
            max_retries=4,
            backoff_base=0.005,
            backoff_cap=0.01,
            max_pool_respawns=1,
        )
        always = tuple(range(10))
        plan = FaultPlan(
            {
                0: FaultSpec(crash_attempts=always),
                1: FaultSpec(crash_attempts=always),
            }
        )
        with ReplicationScheduler(
            processes=2, resilience=policy, fault_plan=plan
        ) as scheduler:
            got = scheduler.replicate(mini_scenario, replications=4, seed=9)
        assert scheduler.degraded_to_serial
        # The poisoned tasks fail in serial soft mode too -> quarantined;
        # the healthy replications still match the reference exactly.
        assert {q["replication"] for q in scheduler.quarantined} == {0, 1}
        expected_times = _times(expected)
        for result in got.results:
            assert result.infection_times == expected_times[result.replication]


@pytest.mark.faultinject
class TestFig1CampaignUnderFaults:
    """The acceptance campaign: a scaled-down Figure-1 run (all four
    viruses) under >=10% worker crashes, one hang, and one corrupted
    cache entry — byte-identical results, a manifest recording every
    retry, and a resume that re-executes only the lost replication."""

    def test_demo_campaign_self_check_passes(self, tmp_path):
        from repro.faults.__main__ import main as faults_main

        manifest_path = tmp_path / "faults-manifest.jsonl"
        code = faults_main(
            [
                "--manifest", str(manifest_path),
                "--cache-dir", str(tmp_path / "cache"),
                "--population", "100",
                "--duration", "5.0",
                "--task-timeout", "2.0",
            ]
        )
        assert code == 0

        records = read_manifests(manifest_path)
        assert len(records) == 2  # injected phase + resume phase
        for record in records:
            assert validate_manifest(record) == []

        injected, resumed = records
        section = injected["resilience"]
        kinds = {event["kind"] for event in section["events"]}
        assert "crash" in kinds and "timeout" in kinds
        assert section["retries"] == len(
            [e for e in section["events"] if e["action"] == "retry"]
        )
        assert section["retries"] >= 3  # 2 crashes + 1 hang, each retried
        assert section["quarantined"] == 0
        assert section["degraded_to_serial"] is False
        assert section["policy"]["task_timeout"] == 2.0

        # Resume phase: cache hit stats prove only the corrupted entry
        # was re-executed.
        assert resumed["resilience"]["resume"] == {
            "previously_completed": 12,
            "resumed_from_cache": 11,
            "lost_entries": 1,
            "fresh": 0,
        }
        assert resumed["cache"]["hits"] == 11
        assert resumed["scheduler"]["executed"] == 1
