"""Tests for the Bluetooth proximity channel (paper's proposed extension)."""

from __future__ import annotations

import pytest

from repro.core import (
    BlacklistConfig,
    GatewayScanConfig,
    ImmunizationConfig,
    NetworkParameters,
    ScenarioConfig,
    Targeting,
    UserEducationConfig,
    UserParameters,
    VirusParameters,
)
from repro.core.simulation import run_scenario

NETWORK = NetworkParameters(population=250, mean_contact_list_size=20.0)


def bluetooth_virus(rate: float = 2.0) -> VirusParameters:
    """A pure Bluetooth worm: no MMS traffic at all.

    Contact-list targeting with an isolated... rather: the MMS channel is
    effectively disabled by an enormous minimum send interval, so only
    proximity encounters spread the infection.
    """
    return VirusParameters(
        name="bluetooth-worm",
        targeting=Targeting.CONTACT_LIST,
        min_send_interval=10_000.0,
        extra_send_delay_mean=0.0,
        bluetooth_rate=rate,
    )


def scenario(*responses, rate: float = 2.0) -> ScenarioConfig:
    config = ScenarioConfig(
        name="bluetooth",
        virus=bluetooth_virus(rate),
        network=NETWORK,
        user=UserParameters(read_delay_mean=0.5),
        duration=96.0,
    )
    if responses:
        config = config.with_responses(*responses)
    return config


def test_bluetooth_channel_spreads():
    result = run_scenario(scenario(), seed=1)
    assert result.counters["bluetooth_encounters"] > 0
    assert result.total_infected > 10
    # No MMS traffic: the only sends the model counts are MMS messages.
    assert result.counters.get("messages_sent", 0) == 0


def test_penetration_matches_consent_model():
    """The 0.40 lifetime-acceptance cap applies to Bluetooth too."""
    result = run_scenario(scenario(rate=4.0).with_duration(200.0), seed=2)
    assert result.penetration == pytest.approx(0.40, abs=0.10)


def test_gateway_scan_cannot_see_bluetooth():
    baseline = run_scenario(scenario(), seed=3)
    scanned = run_scenario(scenario(GatewayScanConfig(activation_delay=1.0)), seed=3)
    assert scanned.total_infected >= 0.9 * baseline.total_infected
    assert scanned.counters["gateway_messages_blocked"] == 0


def test_blacklist_cannot_see_bluetooth():
    baseline = run_scenario(scenario(), seed=3)
    blocked = run_scenario(scenario(BlacklistConfig(threshold=1)), seed=3)
    assert blocked.total_infected >= 0.9 * baseline.total_infected
    assert blocked.response_stats["blacklist"]["phones_blacklisted"] == 0


def test_education_still_works():
    baseline = run_scenario(scenario(), seed=4)
    educated = run_scenario(scenario(UserEducationConfig(0.5)), seed=4)
    assert educated.total_infected < 0.75 * baseline.total_infected


def test_immunization_still_works():
    baseline = run_scenario(scenario(), seed=5)
    patched = run_scenario(
        scenario(ImmunizationConfig(development_time=2.0, deployment_window=1.0)),
        seed=5,
    )
    assert patched.total_infected < 0.7 * baseline.total_infected
    # Patched infected phones stop their encounter loops.
    assert patched.response_stats["immunization"]["phones_quarantined"] >= 0


def test_hybrid_mms_plus_bluetooth():
    """A hybrid spreader uses both channels; the gateway only curbs MMS."""
    virus = VirusParameters(
        name="hybrid",
        targeting=Targeting.CONTACT_LIST,
        min_send_interval=0.1,
        extra_send_delay_mean=0.1,
        bluetooth_rate=1.0,
    )
    config = ScenarioConfig(
        name="hybrid", virus=virus, network=NETWORK,
        user=UserParameters(read_delay_mean=0.5), duration=72.0,
    )
    baseline = run_scenario(config, seed=6)
    scanned = run_scenario(
        config.with_responses(GatewayScanConfig(activation_delay=1.0)), seed=6
    )
    assert baseline.counters["messages_sent"] > 0
    assert baseline.counters["bluetooth_encounters"] > 0
    # The scan slows the combined spread (MMS leg removed) but cannot
    # contain the Bluetooth leg, which alone still reaches the consent cap.
    assert scanned.infected_at(12.0) < baseline.infected_at(12.0)
    assert scanned.total_infected > 0.5 * baseline.total_infected


def test_negative_rate_rejected():
    with pytest.raises(ValueError):
        VirusParameters(name="bad", bluetooth_rate=-1.0)
