"""Tests for the SAN next-event simulator: semantics and analytic checks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.des.random import Deterministic, Exponential
from repro.san import (
    Case,
    ImpulseReward,
    InputGate,
    InstantaneousActivity,
    OutputGate,
    RateReward,
    SANModel,
    SANSimulator,
    TimedActivity,
    place_count,
    place_sum,
    simulate,
)
from repro.des.simulator import SimulationError


def counter_model(budget: int = 5, period: float = 1.0) -> SANModel:
    model = SANModel("counter")
    model.place("budget", budget)
    model.place("done", 0)
    model.add_activity(
        TimedActivity(
            "tick", Deterministic(period), input_arcs=["budget"], output_arcs=["done"]
        )
    )
    return model


def test_deterministic_chain_completes():
    result = simulate(counter_model(), until=10.0, rng=np.random.default_rng(0))
    assert result.final_marking["done"] == 5
    assert result.final_marking["budget"] == 0
    assert result.firing_count("tick") == 5


def test_horizon_cuts_off_firings():
    result = simulate(counter_model(), until=2.5, rng=np.random.default_rng(0))
    assert result.final_marking["done"] == 2


def test_activity_disabled_midway_is_aborted():
    """A draining activity loses its sampled time when disabled."""
    model = SANModel("abort")
    model.place("fuel", 1)
    model.place("out_slow", 0)
    model.place("out_fast", 0)
    # Both compete for the same fuel token; the fast one always wins and
    # the slow one must be aborted (never fires).
    model.add_activity(
        TimedActivity("slow", Deterministic(10.0), input_arcs=["fuel"],
                      output_arcs=["out_slow"])
    )
    model.add_activity(
        TimedActivity("fast", Deterministic(1.0), input_arcs=["fuel"],
                      output_arcs=["out_fast"])
    )
    result = simulate(model, until=100.0, rng=np.random.default_rng(0))
    assert result.final_marking["out_fast"] == 1
    assert result.final_marking["out_slow"] == 0
    assert result.firing_count("slow") == 0


def test_reenabled_activity_resamples():
    """After an abort, re-enabling samples a fresh delay (enabling memory reset)."""
    model = SANModel("resample")
    model.place("gate_open", 1)
    model.place("count", 0)
    model.add_activity(
        TimedActivity(
            "work",
            Deterministic(3.0),
            input_gates=[InputGate("open", ("gate_open",),
                                   predicate=lambda m: m["gate_open"] >= 1)],
            output_arcs=["count"],
        )
    )
    # A toggler that closes the gate at t=2 (before work completes at 3)
    # and reopens it at t=4; work should complete at 4+3=7, not at 3 or 5.
    model.place("toggle_budget", 2)
    toggle_times = iter([2.0, 2.0])

    def toggle(marking):
        marking["gate_open"] = 0 if marking["gate_open"] else 1

    model.add_activity(
        TimedActivity(
            "toggler",
            Deterministic(2.0),
            input_arcs=["toggle_budget"],
            output_gates=[OutputGate("flip", ("gate_open",), function=toggle)],
        )
    )
    simulator = SANSimulator(
        model, np.random.default_rng(0), rate_rewards=[RateReward("count", place_count("count"))]
    )
    result = simulator.run(until=20.0)
    trajectory = result.rewards.trajectory("count")
    first_completion = [t for t, v in trajectory if v >= 1][0]
    assert first_completion == pytest.approx(7.0)


def test_instantaneous_fires_immediately():
    model = SANModel("instant")
    model.place("a", 1)
    model.place("b", 0)
    model.place("c", 0)
    model.add_activity(
        TimedActivity("t", Deterministic(2.0), input_arcs=["a"], output_arcs=["b"])
    )
    model.add_activity(
        InstantaneousActivity("i", input_arcs=["b"], output_arcs=["c"])
    )
    result = simulate(model, until=10.0, rng=np.random.default_rng(0))
    assert result.final_marking["c"] == 1
    assert result.final_time == 10.0


def test_instantaneous_priority_order():
    """Higher priority instantaneous activity wins the shared token."""
    model = SANModel("prio")
    model.place("token", 1)
    model.place("low_out", 0)
    model.place("high_out", 0)
    model.add_activity(
        InstantaneousActivity("low", input_arcs=["token"], output_arcs=["low_out"],
                              priority=0)
    )
    model.add_activity(
        InstantaneousActivity("high", input_arcs=["token"], output_arcs=["high_out"],
                              priority=5)
    )
    result = simulate(model, until=1.0, rng=np.random.default_rng(0))
    assert result.final_marking["high_out"] == 1
    assert result.final_marking["low_out"] == 0


def test_instantaneous_chain_at_startup():
    model = SANModel("chain")
    model.place("a", 1)
    model.place("b", 0)
    model.place("c", 0)
    model.add_activity(InstantaneousActivity("ab", input_arcs=["a"], output_arcs=["b"]))
    model.add_activity(InstantaneousActivity("bc", input_arcs=["b"], output_arcs=["c"]))
    result = simulate(model, until=1.0, rng=np.random.default_rng(0))
    assert result.final_marking["c"] == 1


def test_zeno_loop_detected():
    model = SANModel("zeno")
    model.place("a", 1)
    model.place("b", 0)
    model.add_activity(InstantaneousActivity("ab", input_arcs=["a"], output_arcs=["b"]))
    model.add_activity(InstantaneousActivity("ba", input_arcs=["b"], output_arcs=["a"]))
    with pytest.raises(SimulationError):
        simulate(model, until=1.0, rng=np.random.default_rng(0))


def test_self_reenabling_cycle():
    """An always-enabled timed activity keeps firing (send loop pattern)."""
    model = SANModel("loop")
    model.place("sent", 0)
    model.add_activity(
        TimedActivity("send", Deterministic(1.0), output_arcs=["sent"])
    )
    result = simulate(model, until=10.0, rng=np.random.default_rng(0))
    assert result.final_marking["sent"] == 10


def test_mm1_like_birth_death_balance():
    """Birth-death chain: arrival/service rates 1:2 give ~1/3 utilisation.

    An M/M/1 queue with λ=1, μ=2 has P(busy) = ρ = 0.5 at equilibrium; we
    check the time-averaged queue-nonempty indicator against theory within
    Monte Carlo tolerance.
    """
    model = SANModel("mm1")
    model.place("queue", 0)
    model.add_activity(
        TimedActivity("arrive", Exponential(1.0), output_arcs=["queue"])
    )
    model.add_activity(
        TimedActivity("serve", Exponential(0.5), input_arcs=["queue"])
    )
    simulator = SANSimulator(
        model,
        np.random.default_rng(42),
        rate_rewards=[
            RateReward("busy", lambda m: 1.0 if m["queue"] > 0 else 0.0),
            RateReward("length", place_count("queue")),
        ],
        record_trajectories=False,
    )
    result = simulator.run(until=20000.0)
    busy_fraction = result.rewards.time_averaged_value("busy")
    mean_length = result.rewards.time_averaged_value("length")
    assert abs(busy_fraction - 0.5) < 0.05
    # M/M/1 mean queue length = rho / (1 - rho) = 1.
    assert abs(mean_length - 1.0) < 0.15


def test_impulse_rewards_count_firings():
    model = counter_model(budget=4)
    simulator = SANSimulator(
        model,
        np.random.default_rng(0),
        impulse_rewards=[ImpulseReward("ticks", ("tick",), value=2.0)],
    )
    result = simulator.run(until=10.0)
    assert result.rewards.impulse_total("ticks") == 8.0


def test_rate_reward_trajectory_and_interval():
    model = counter_model(budget=3, period=1.0)
    simulator = SANSimulator(
        model,
        np.random.default_rng(0),
        rate_rewards=[RateReward("done", place_count("done"))],
    )
    result = simulator.run(until=10.0)
    trajectory = result.rewards.trajectory("done")
    assert trajectory[0] == (0.0, 0.0)
    assert [v for _, v in trajectory] == [0.0, 1.0, 2.0, 3.0]
    # Integral: 0 on [0,1), 1 on [1,2), 2 on [2,3), 3 on [3,10] = 0+1+2+21.
    assert result.rewards.interval_value("done") == pytest.approx(24.0)
    assert result.rewards.time_averaged_value("done") == pytest.approx(2.4)


def test_place_sum_reward():
    model = SANModel("sum")
    model.place("a", 2)
    model.place("b", 3)
    simulator = SANSimulator(
        model,
        np.random.default_rng(0),
        rate_rewards=[RateReward("total", place_sum(["a", "b"]))],
    )
    result = simulator.run(until=1.0)
    assert result.rewards.instant_value("total") == 5.0


def test_negative_until_rejected():
    with pytest.raises(SimulationError):
        simulate(counter_model(), until=-1.0, rng=np.random.default_rng(0))
