"""Tests for graph metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.topology import (
    ContactGraph,
    DegreeStats,
    average_clustering,
    average_path_length,
    clustering_coefficient,
    complete_graph,
    connected_components,
    degree_histogram,
    erdos_renyi,
    largest_component_fraction,
    powerlaw_exponent_mle,
    ring_lattice,
    shortest_path_lengths,
)


def test_degree_stats():
    graph = ContactGraph.from_edges(4, [(0, 1), (0, 2), (0, 3)])
    stats = DegreeStats.of(graph)
    assert stats.count == 4
    assert stats.mean == pytest.approx(1.5)
    assert stats.minimum == 1
    assert stats.maximum == 3
    assert stats.median == 1.0


def test_degree_stats_empty():
    stats = DegreeStats.of(ContactGraph(0))
    assert stats.count == 0
    assert stats.mean == 0.0


def test_degree_histogram():
    graph = ContactGraph.from_edges(4, [(0, 1), (0, 2), (0, 3)])
    assert degree_histogram(graph) == {3: 1, 1: 3}


def test_connected_components():
    graph = ContactGraph.from_edges(6, [(0, 1), (1, 2), (3, 4)])
    components = connected_components(graph)
    assert components[0] == [0, 1, 2]
    assert components[1] == [3, 4]
    assert components[2] == [5]
    assert largest_component_fraction(graph) == pytest.approx(0.5)


def test_clustering_complete_graph():
    graph = complete_graph(5)
    assert clustering_coefficient(graph, 0) == pytest.approx(1.0)
    assert average_clustering(graph) == pytest.approx(1.0)


def test_clustering_star_graph():
    graph = ContactGraph.from_edges(4, [(0, 1), (0, 2), (0, 3)])
    assert clustering_coefficient(graph, 0) == 0.0
    assert clustering_coefficient(graph, 1) == 0.0  # degree < 2


def test_clustering_triangle_plus_leaf():
    graph = ContactGraph.from_edges(4, [(0, 1), (1, 2), (0, 2), (2, 3)])
    # Node 2 has neighbours {0, 1, 3}; one of the three possible links (0-1).
    assert clustering_coefficient(graph, 2) == pytest.approx(1.0 / 3.0)


def test_sampled_clustering_close_to_exact():
    rng = np.random.default_rng(0)
    graph = erdos_renyi(300, 12.0, rng)
    exact = average_clustering(graph)
    sampled = average_clustering(graph, sample=150, rng=np.random.default_rng(1))
    assert abs(exact - sampled) < 0.03


def test_shortest_paths_ring():
    graph = ring_lattice(8, 2)
    distances = shortest_path_lengths(graph, 0)
    assert distances[1] == 1
    assert distances[4] == 4
    assert len(distances) == 8


def test_average_path_length_complete():
    assert average_path_length(complete_graph(6)) == pytest.approx(1.0)


def test_average_path_length_disconnected_uses_largest():
    graph = ContactGraph.from_edges(5, [(0, 1), (1, 2), (3, 4)])
    # Largest component path lengths: (0-1)=1, (1-2)=1, (0-2)=2 → mean 4/3.
    assert average_path_length(graph) == pytest.approx(4.0 / 3.0)


def test_powerlaw_mle_recovers_exponent():
    rng = np.random.default_rng(3)
    alpha_true = 2.5
    samples = (1.0 * (1 - rng.random(50000)) ** (-1.0 / (alpha_true - 1))).astype(int)
    # Discretisation distorts the smallest values; fit the tail only (the
    # standard Clauset-style practice).
    alpha_hat, tail = powerlaw_exponent_mle([s for s in samples if s >= 5], x_min=5)
    assert tail > 1000
    assert abs(alpha_hat - alpha_true) < 0.35


def test_powerlaw_mle_distinguishes_heavy_from_light_tails():
    rng = np.random.default_rng(4)
    heavy = (30.0 * (1 - rng.random(20000)) ** (-1.0 / 1.2)).astype(int)
    light = rng.poisson(30.0, size=20000)
    # Fit both tails above the same cutoff: the Poisson tail decays much
    # faster, so its fitted exponent is far larger.
    alpha_heavy, _ = powerlaw_exponent_mle([s for s in heavy if s >= 30], x_min=30)
    alpha_light, _ = powerlaw_exponent_mle([s for s in light if s >= 30], x_min=30)
    assert alpha_heavy + 1.0 < alpha_light


def test_powerlaw_mle_needs_tail():
    with pytest.raises(ValueError):
        powerlaw_exponent_mle([1], x_min=1)
