"""Tests for scenario execution and replication aggregation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.simulation import ReplicationSet, replicate_scenario, run_scenario
from repro.topology import contact_network


def test_scenario_result_fields(small_scenario):
    result = run_scenario(small_scenario, seed=0)
    assert result.config is small_scenario
    assert result.seed == 0
    assert result.replication == 0
    assert result.final_time == small_scenario.duration
    assert result.population == 200
    assert result.susceptible_count == 160
    assert result.patient_zero is not None
    assert 0 < result.total_infected <= result.susceptible_count
    assert 0 < result.penetration <= 1.0


def test_result_curve_and_infected_at(small_scenario):
    result = run_scenario(small_scenario, seed=0)
    curve = result.curve()
    assert curve.value_at(0.0) in (0.0, 1.0)
    assert curve.final_value == result.total_infected
    assert result.infected_at(small_scenario.duration) == result.total_infected
    # Monotone in time.
    grid = np.linspace(0, small_scenario.duration, 50)
    values = curve.resample(grid)
    assert np.all(np.diff(values) >= 0)


def test_replications_are_independent(small_scenario):
    result_set = replicate_scenario(small_scenario, replications=3, seed=5)
    assert result_set.replications == 3
    finals = result_set.final_infected()
    assert len(set(finals)) > 1 or finals[0] > 0
    times = [tuple(r.infection_times) for r in result_set.results]
    assert len(set(times)) == 3


def test_replicate_reproducible(small_scenario):
    a = replicate_scenario(small_scenario, replications=2, seed=5)
    b = replicate_scenario(small_scenario, replications=2, seed=5)
    assert a.final_infected() == b.final_infected()


def test_band_and_mean_curve(small_scenario):
    result_set = replicate_scenario(small_scenario, replications=3, seed=5)
    band = result_set.band(grid_points=50)
    assert band.replications == 3
    assert len(band.grid) == 50
    assert np.all(band.lower <= band.mean + 1e-9)
    assert np.all(band.mean <= band.upper + 1e-9)
    mean_curve = result_set.mean_curve(grid_points=50)
    assert mean_curve.final_value == pytest.approx(band.mean[-1])
    assert result_set.mean_infected_at(small_scenario.duration) == pytest.approx(
        float(np.mean(result_set.final_infected())), abs=1e-6
    )


def test_final_summary_statistics(small_scenario):
    result_set = replicate_scenario(small_scenario, replications=4, seed=5)
    summary = result_set.final_summary()
    assert summary.count == 4
    assert summary.minimum <= summary.mean <= summary.maximum
    assert summary.ci_lower <= summary.mean <= summary.ci_upper


def test_detection_time_aggregation(small_scenario):
    result_set = replicate_scenario(small_scenario, replications=2, seed=5)
    detection = result_set.mean_detection_time()
    assert detection is not None and detection > 0


def test_counter_total(small_scenario):
    result_set = replicate_scenario(small_scenario, replications=2, seed=5)
    assert result_set.counter_total("messages_sent") > 0
    assert result_set.counter_total("nonexistent") == 0


def test_pinned_graph_shared_across_replications(small_scenario):
    graph = contact_network(
        small_scenario.network.population,
        small_scenario.network.mean_contact_list_size,
        np.random.default_rng(0),
    )
    result_set = replicate_scenario(
        small_scenario, replications=2, seed=5, graph=graph
    )
    assert result_set.replications == 2


def test_invalid_replication_count(small_scenario):
    with pytest.raises(ValueError):
        replicate_scenario(small_scenario, replications=0)
