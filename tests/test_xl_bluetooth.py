"""Tier-1 tests for the xl engine's hybrid MMS + Bluetooth channel.

Fast checks: parameter plumbing (mobility config, serialization, cache
identity, CLI-facing presets), seeded determinism of the hybrid round
loop, channel semantics (blacklist blind spot, patch quarantine, grid
fizzles), and a BT-only sanity run against the core engine's
random-mixing channel.  The full statistical differential lives behind
the ``validation`` marker (see ``run_bluetooth_differential``).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

import numpy as np
import pytest

from repro.core.cache import result_key
from repro.core.parameters import (
    BlacklistConfig,
    ImmunizationConfig,
    MobilityParameters,
    NetworkParameters,
    ScenarioConfig,
)
from repro.core.scenarios import baseline_scenario
from repro.core.serialization import scenario_from_dict, scenario_to_dict
from repro.core.simulation import run_scenario
from repro.xl import round_width, run_scenario_xl
from repro.xl.presets import density_matched_mobility, hybrid_scenario


def _bt_scenario(
    bluetooth_rate: float = 2.0,
    population: int = 200,
    duration: float = 48.0,
    mobility: Optional[MobilityParameters] = None,
    **virus_overrides,
) -> ScenarioConfig:
    base = baseline_scenario(
        1, network=NetworkParameters(population=population), duration=duration
    )
    config = replace(
        base,
        engine="xl",
        virus=replace(base.virus, bluetooth_rate=bluetooth_rate, **virus_overrides),
    )
    if mobility is not None:
        config = config.with_mobility(mobility)
    return config


DENSE = MobilityParameters(arena_size=500.0, bluetooth_radius=50.0)


# -- parameter plumbing -------------------------------------------------------


def test_mobility_parameters_validate():
    with pytest.raises(ValueError):
        MobilityParameters(arena_size=0.0)
    with pytest.raises(ValueError):
        MobilityParameters(speed_min=0.0)
    with pytest.raises(ValueError):
        MobilityParameters(speed_min=10.0, speed_max=5.0)
    with pytest.raises(ValueError):
        MobilityParameters(pause_min=-1.0)
    with pytest.raises(ValueError):
        MobilityParameters(bluetooth_radius=0.0)
    params = MobilityParameters(arena_size=100.0, bluetooth_radius=10.0)
    assert params.expected_contact_fraction == pytest.approx(np.pi / 100.0)


def test_mobility_requires_xl_engine():
    config = baseline_scenario(1)
    with pytest.raises(ValueError, match="xl engine"):
        replace(config, mobility=MobilityParameters())
    hybrid = config.with_engine("xl").with_mobility(MobilityParameters())
    assert hybrid.mobility is not None


def test_mobility_round_trips_through_serialization():
    config = _bt_scenario(mobility=DENSE)
    document = scenario_to_dict(config)
    assert document["mobility"]["arena_size"] == 500.0
    assert scenario_from_dict(document).mobility == DENSE
    # Scenarios without mobility stay byte-stable: no key at all.
    assert "mobility" not in scenario_to_dict(_bt_scenario())


def test_mobility_is_part_of_cache_identity():
    plain = _bt_scenario()
    assert result_key(plain, 0, 0) != result_key(plain.with_mobility(DENSE), 0, 0)


def test_round_width_shrinks_for_fast_bluetooth():
    # A Bluetooth rate faster than the MMS pacing must tighten the round
    # so multiple encounter generations can't collapse into one round.
    plain = _bt_scenario(bluetooth_rate=0.0)
    fast = _bt_scenario(bluetooth_rate=50.0)
    assert round_width(fast) <= 1.0 / 50.0 / 2.0
    assert round_width(fast) < round_width(plain)


def test_hybrid_preset_builds():
    config = hybrid_scenario(1, "paper", bluetooth_rate=1.5)
    assert config.engine == "xl"
    assert config.virus.bluetooth_rate == 1.5
    assert config.name.endswith("-hybrid")
    mobility = density_matched_mobility(100_000)
    assert mobility.arena_size == pytest.approx(10_000.0)
    with_grid = hybrid_scenario(1, "paper", mobility=density_matched_mobility(1000))
    assert with_grid.mobility is not None


# -- hybrid round loop --------------------------------------------------------


def test_hybrid_deterministic_per_seed():
    config = _bt_scenario(mobility=DENSE, population=150, duration=24.0)
    a = run_scenario_xl(config, seed=11)
    b = run_scenario_xl(config, seed=11)
    assert a.infection_times == b.infection_times
    assert a.counters["bluetooth_encounters"] == b.counters["bluetooth_encounters"]
    c = run_scenario_xl(config, seed=12)
    assert a.infection_times != c.infection_times


def test_hybrid_spreads_at_least_as_much_as_mms_only():
    mms = run_scenario_xl(_bt_scenario(bluetooth_rate=0.0), seed=5)
    hybrid = run_scenario_xl(_bt_scenario(bluetooth_rate=2.0), seed=5)
    assert hybrid.total_infected >= mms.total_infected
    assert hybrid.counters["bluetooth_encounters"] > 0


def test_bt_only_infects_without_any_mms():
    # Dormancy pushed past the horizon: the first MMS send never lands,
    # so every infection after patient zero travelled over Bluetooth.
    config = _bt_scenario(bluetooth_rate=3.0, dormancy=1000.0)
    result = run_scenario_xl(config, seed=7)
    assert result.counters.get("sends", 0) == 0
    assert result.total_infected > 1


def test_bt_only_close_to_core_random_mixing():
    # Single-seed sanity bound (the statistical gates live in the
    # validation campaign): both engines describe the same BT-only
    # process, so a 3x mean-ratio window is generous.
    xl_config = _bt_scenario(
        bluetooth_rate=2.0, population=300, duration=24.0, dormancy=1000.0
    )
    core_config = xl_config.with_engine("core")
    xl_total = np.mean(
        [run_scenario_xl(xl_config, seed=s).total_infected for s in range(4)]
    )
    core_total = np.mean(
        [run_scenario(core_config, seed=s).total_infected for s in range(4)]
    )
    assert xl_total / core_total < 3.0
    assert core_total / xl_total < 3.0


def test_sparse_grid_fizzles_and_slows_spread():
    sparse = MobilityParameters(arena_size=100_000.0, bluetooth_radius=1.0)
    mixing = run_scenario_xl(
        _bt_scenario(bluetooth_rate=3.0, dormancy=1000.0), seed=9
    )
    grid = run_scenario_xl(
        _bt_scenario(bluetooth_rate=3.0, dormancy=1000.0, mobility=sparse), seed=9
    )
    assert grid.counters.get("bluetooth_fizzled", 0) > 0
    assert grid.total_infected <= mixing.total_infected


def test_blacklist_does_not_stop_bluetooth():
    # The blacklist acts at the MMS gateway; Bluetooth transfers never
    # cross it, so a blacklisted phone keeps spreading over proximity.
    config = _bt_scenario(bluetooth_rate=3.0, dormancy=1000.0, population=300)
    baseline = run_scenario_xl(config, seed=3)
    blacklisted = run_scenario_xl(
        replace(config, responses=(BlacklistConfig(threshold=1),)), seed=3
    )
    assert blacklisted.total_infected >= 0.5 * baseline.total_infected


def test_patch_quarantine_stops_bluetooth():
    config = _bt_scenario(bluetooth_rate=3.0, dormancy=1000.0, population=300)
    baseline = run_scenario_xl(config, seed=3)
    patched = run_scenario_xl(
        replace(
            config,
            responses=(
                ImmunizationConfig(development_time=2.0, deployment_window=1.0),
            ),
        ),
        seed=3,
    )
    assert patched.total_infected < baseline.total_infected


# -- statistical differential (validation marker) -----------------------------


@pytest.mark.validation
def test_bluetooth_differential_gates_pass():
    from repro.validation import run_bluetooth_differential

    verdict = run_bluetooth_differential()
    failed = [gate for gate in verdict.gates if not gate.passed]
    assert not failed, "\n".join(gate.detail for gate in failed)
