"""Tests for strength sweeps and diminishing-returns analysis."""

from __future__ import annotations

import pytest

from repro.core import (
    GatewayScanConfig,
    NetworkParameters,
    ScenarioConfig,
    UserEducationConfig,
    UserParameters,
    VirusParameters,
)
from repro.experiments.sensitivity import (
    STANDARD_SWEEPS,
    SweepSpec,
    knee_point,
    run_strength_sweep,
)


class TestKneePoint:
    def test_clear_knee_found(self):
        xs = [0, 1, 2, 3, 4, 5]
        ys = [0, 80, 95, 98, 99, 100]  # saturating benefit
        index = knee_point(xs, ys)
        assert index in (1, 2)

    def test_linear_curve_has_no_knee(self):
        xs = [0, 1, 2, 3, 4]
        ys = [0, 25, 50, 75, 100]
        assert knee_point(xs, ys) is None

    def test_flat_curve_has_no_knee(self):
        assert knee_point([0, 1, 2], [5, 5, 5]) is None

    def test_too_few_points(self):
        assert knee_point([0, 1], [0, 1]) is None

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            knee_point([0, 1, 2], [0, 1])


def tiny_sweep() -> SweepSpec:
    network = NetworkParameters(population=150, mean_contact_list_size=15.0)
    virus = VirusParameters(
        name="tiny", min_send_interval=0.05, extra_send_delay_mean=0.05
    )
    base = ScenarioConfig(
        name="tiny-base", virus=virus, network=network,
        user=UserParameters(read_delay_mean=0.2), duration=24.0,
    )
    return SweepSpec(
        sweep_id="tiny_education",
        strength_label="acceptance scale",
        larger_is_stronger=False,
        strengths=(0.1, 0.5, 1.0),
        build=lambda v: UserEducationConfig(acceptance_scale=v),
        base_scenario=base,
    )


class TestRunSweep:
    def test_sweep_runs_and_orders(self):
        result = run_strength_sweep(tiny_sweep(), replications=2, seed=1)
        assert len(result.final_infected) == 3
        # Stronger education (smaller scale) => fewer infections.
        assert result.final_infected[0] < result.final_infected[2]
        containment = result.containment()
        assert all(0.0 <= c <= 1.3 for c in containment)
        benefit = result.benefit()
        assert benefit[0] >= benefit[2]

    def test_format_contains_table_and_verdict(self):
        result = run_strength_sweep(tiny_sweep(), replications=1, seed=1)
        text = result.format()
        assert "acceptance scale" in text
        assert "baseline" in text
        assert ("knee" in text) or ("flat" in text)

    def test_reproducible(self):
        a = run_strength_sweep(tiny_sweep(), replications=1, seed=3)
        b = run_strength_sweep(tiny_sweep(), replications=1, seed=3)
        assert a.final_infected == b.final_infected


class TestStandardSweeps:
    def test_all_mechanisms_covered(self):
        assert set(STANDARD_SWEEPS) == {
            "scan_delay",
            "detection_accuracy",
            "education_scale",
            "patch_deployment",
            "monitoring_wait",
            "blacklist_threshold",
        }

    def test_specs_wellformed(self):
        for sweep_id, spec in STANDARD_SWEEPS.items():
            assert spec.sweep_id == sweep_id
            assert len(spec.strengths) >= 3
            config = spec.build(spec.strengths[0])
            assert config is not None

    def test_sweep_requires_three_strengths(self):
        spec = tiny_sweep()
        with pytest.raises(ValueError):
            SweepSpec(
                sweep_id="x",
                strength_label="y",
                larger_is_stronger=True,
                strengths=(1.0, 2.0),
                build=spec.build,
                base_scenario=spec.base_scenario,
            )
