"""Tests for the scheduler/caching flags on the CLI commands."""

from __future__ import annotations

from repro.cli import build_parser, main


class TestParser:
    def test_scheduler_flags_present(self):
        parser = build_parser()
        args = parser.parse_args(
            ["run", "--virus", "1", "--processes", "4", "--no-cache",
             "--cache-dir", "/tmp/x"]
        )
        assert args.processes == 4
        assert args.no_cache is True
        assert args.cache_dir == "/tmp/x"

    def test_figure_accepts_multiple_ids(self):
        parser = build_parser()
        args = parser.parse_args(["figure", "fig1", "fig2", "--no-cache"])
        assert args.experiment_ids == ["fig1", "fig2"]

    def test_sweep_has_flags(self):
        parser = build_parser()
        args = parser.parse_args(["sweep", "scan_delay", "--processes", "2"])
        assert args.processes == 2
        assert args.no_cache is False


class TestRunCommand:
    BASE = [
        "run", "--virus", "3", "--population", "120", "--duration", "4",
        "--replications", "2", "--no-chart",
    ]

    def test_no_cache_runs_serially(self, capsys):
        assert main(self.BASE + ["--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "scheduler: 2 jobs: 2 simulated, 0 from cache" in out

    def test_second_invocation_hits_cache(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        assert main(self.BASE + ["--cache-dir", cache_dir]) == 0
        first = capsys.readouterr().out
        assert "2 simulated, 0 from cache" in first
        assert main(self.BASE + ["--cache-dir", cache_dir]) == 0
        second = capsys.readouterr().out
        assert "0 simulated, 2 from cache" in second
        # Identical results either way: the summary lines match exactly.
        pick = lambda text: [
            line for line in text.splitlines()
            if line.startswith(("final infected", "penetration"))
        ]
        assert pick(first) == pick(second)

    def test_parallel_matches_serial_output(self, tmp_path, capsys):
        assert main(self.BASE + ["--no-cache"]) == 0
        serial = capsys.readouterr().out
        assert main(self.BASE + ["--no-cache", "--processes", "2"]) == 0
        parallel = capsys.readouterr().out
        pick = lambda text: [
            line for line in text.splitlines()
            if line.startswith(("final infected", "penetration"))
        ]
        assert pick(serial) == pick(parallel)

    def test_cache_dir_created(self, tmp_path):
        cache_dir = tmp_path / "cache"
        assert main(self.BASE + ["--cache-dir", str(cache_dir)]) == 0
        assert cache_dir.exists()
        assert list(cache_dir.glob("*/*.json"))


class TestMetricsFlag:
    BASE = [
        "run", "--virus", "3", "--population", "120", "--duration", "4",
        "--replications", "2", "--no-chart", "--no-cache",
    ]

    def test_metrics_flag_parses(self):
        parser = build_parser()
        args = parser.parse_args(self.BASE + ["--metrics", "out.jsonl"])
        assert args.metrics == "out.jsonl"
        assert build_parser().parse_args(self.BASE).metrics is None

    def test_run_writes_schema_valid_manifest(self, tmp_path, capsys):
        from repro.obs.manifest import read_manifests, validate_manifest

        path = tmp_path / "run.jsonl"
        assert main(self.BASE + ["--metrics", str(path)]) == 0
        assert "run manifest appended" in capsys.readouterr().out
        (record,) = read_manifests(path)
        assert validate_manifest(record) == []
        assert record["kind"] == "run"
        assert record["label"].startswith("run:")
        assert record["events_executed"] > 0
        assert record["events_per_second"] > 0
        assert record["workers"]

    def test_repeat_runs_append(self, tmp_path):
        from repro.obs.manifest import read_manifests

        path = tmp_path / "run.jsonl"
        assert main(self.BASE + ["--metrics", str(path)]) == 0
        assert main(self.BASE + ["--metrics", str(path)]) == 0
        assert len(read_manifests(path)) == 2


class TestProfileCommand:
    BASE = [
        "profile", "--virus", "3", "--population", "150",
        "--max-events", "2000", "--seed", "1",
    ]

    def test_parser_defaults(self):
        args = build_parser().parse_args(["profile"])
        assert args.virus == 1
        assert args.metrics is None

    def test_profile_prints_breakdown(self, capsys):
        assert main(self.BASE) == 0
        out = capsys.readouterr().out
        assert "profile: virus3-baseline" in out
        assert "event label" in out
        assert "send" in out

    def test_profile_manifest(self, tmp_path, capsys):
        from repro.obs.manifest import read_manifests, validate_manifest

        path = tmp_path / "profile.jsonl"
        assert main(self.BASE + ["--metrics", str(path)]) == 0
        (record,) = read_manifests(path)
        assert validate_manifest(record) == []
        assert record["kind"] == "profile"
        assert record["extra"]["hotspots"]


class TestProfileXLCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["profile"])
        assert args.engine == "core"
        assert args.preset == "xl-10k"

    def test_xl_profile_prints_phase_breakdown(self, capsys):
        assert main(
            ["profile", "--engine", "xl", "--preset", "paper",
             "--duration", "48", "--seed", "1"]
        ) == 0
        out = capsys.readouterr().out
        assert "xl engine, preset paper" in out
        assert "round phase" in out

    def test_xl_profile_manifest(self, tmp_path, capsys):
        from repro.obs.manifest import read_manifests, validate_manifest

        path = tmp_path / "profile.jsonl"
        assert main(
            ["profile", "--engine", "xl", "--preset", "paper",
             "--duration", "48", "--metrics", str(path)]
        ) == 0
        (record,) = read_manifests(path)
        assert validate_manifest(record) == []
        assert record["extra"]["engine"] == "xl"
        assert record["extra"]["phases"]


class TestAutoDegradeFlag:
    def test_flag_parses(self):
        args = build_parser().parse_args(
            ["figure", "3", "--no-auto-degrade"]
        )
        assert args.no_auto_degrade is True
        assert build_parser().parse_args(["figure", "3"]).no_auto_degrade is False
