"""Property tests for the vectorised consent model (hypothesis).

Mirrors ``test_consent_series.py`` for the xl engine: the batched
``AF/2^n`` helpers must agree *elementwise* with the scalar reference in
:mod:`repro.core.user` over random population vectors, and the implied
ever-accept probability must stay at the paper's ~0.40 plateau.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.user import (
    ACCEPTANCE_NEGLIGIBLE_AFTER,
    PAPER_ACCEPTANCE_FACTOR,
    acceptance_probability,
    total_acceptance_probability,
)
from repro.xl.consent import (
    acceptance_probabilities,
    batch_message_indices,
    decide_batch,
    occurrence_index,
)


@given(
    factor=st.floats(0.0, 1.0),
    n=st.lists(st.integers(1, 64), min_size=1, max_size=200),
)
@settings(max_examples=100, deadline=None)
def test_vectorised_probabilities_match_scalar_elementwise(factor, n):
    indices = np.array(n, dtype=np.int64)
    vectorised = acceptance_probabilities(factor, indices)
    for i, value in enumerate(n):
        assert vectorised[i] == pytest.approx(
            acceptance_probability(factor, value), abs=1e-15
        )


@given(n=st.lists(st.integers(1, 40), min_size=1, max_size=100))
@settings(max_examples=100, deadline=None)
def test_probabilities_zero_beyond_truncation(n):
    indices = np.array(n, dtype=np.int64)
    probabilities = acceptance_probabilities(PAPER_ACCEPTANCE_FACTOR, indices)
    beyond = indices > ACCEPTANCE_NEGLIGIBLE_AFTER
    assert np.all(probabilities[beyond] == 0.0)
    assert np.all(probabilities[~beyond] > 0.0)
    assert np.all((0.0 <= probabilities) & (probabilities <= 1.0))


def test_rejects_invalid_factor():
    with pytest.raises(ValueError):
        acceptance_probabilities(1.5, np.array([1]))
    with pytest.raises(ValueError):
        acceptance_probabilities(-0.1, np.array([1]))


@given(
    ids=st.lists(st.integers(0, 9), min_size=1, max_size=200),
)
@settings(max_examples=100, deadline=None)
def test_occurrence_index_counts_within_runs(ids):
    sorted_ids = np.sort(np.array(ids, dtype=np.int64))
    occurrence = occurrence_index(sorted_ids)
    seen: dict = {}
    for identifier, occ in zip(sorted_ids, occurrence):
        assert occ == seen.get(int(identifier), 0)
        seen[int(identifier)] = int(occ) + 1


@given(
    deliveries=st.lists(st.integers(0, 7), min_size=1, max_size=150),
    prior=st.lists(st.integers(0, 20), min_size=8, max_size=8),
)
@settings(max_examples=100, deadline=None)
def test_batch_indices_continue_each_phones_series(deliveries, prior):
    recipients = np.sort(np.array(deliveries, dtype=np.int64))
    received = np.array(prior, dtype=np.int64)
    n = batch_message_indices(recipients, received)
    # Each phone's indices continue its series: prior + 1, prior + 2, ...
    for phone in np.unique(recipients):
        expected_start = received[phone] + 1
        got = n[recipients == phone]
        assert list(got) == list(
            range(expected_start, expected_start + got.size)
        )


def test_cumulative_ever_accept_matches_paper_plateau():
    """Driving the batched decision to exhaustion accepts ~40% of phones."""
    rng = np.random.default_rng(2007)
    population = 20_000
    received = np.zeros(population, dtype=np.int64)
    accepted = np.zeros(population, dtype=bool)
    all_phones = np.arange(population, dtype=np.int64)
    for _ in range(ACCEPTANCE_NEGLIGIBLE_AFTER):
        pending = all_phones[~accepted]
        decisions = decide_batch(
            PAPER_ACCEPTANCE_FACTOR, pending, received, rng
        )
        accepted[pending[decisions]] = True
        received[pending] += 1
    ever = accepted.mean()
    expected = total_acceptance_probability(PAPER_ACCEPTANCE_FACTOR)
    assert expected == pytest.approx(0.40, abs=0.005)
    # Binomial SE at n=20k is ~0.35%; allow 3 sigma.
    assert ever == pytest.approx(expected, abs=0.011)


def test_decide_batch_multiple_deliveries_same_phone():
    """Several messages to one phone in one batch step n without gaps."""
    rng = np.random.default_rng(0)
    recipients = np.array([4, 4, 4], dtype=np.int64)
    received = np.zeros(8, dtype=np.int64)
    n = batch_message_indices(recipients, received)
    assert list(n) == [1, 2, 3]
    decisions = decide_batch(1.0, recipients, received, rng)
    # With factor 1.0 the first message accepts with p=0.5 etc.; the draw
    # shape must match the batch shape regardless.
    assert decisions.shape == recipients.shape
