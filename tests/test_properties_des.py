"""Property-based tests for the DES kernel (hypothesis)."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.des import Simulator
from repro.des.queue import EventQueue

delays = st.floats(min_value=0.0, max_value=1000.0, allow_nan=False)


@given(st.lists(delays, min_size=1, max_size=200))
@settings(max_examples=50, deadline=None)
def test_events_always_fire_in_nondecreasing_time_order(times):
    sim = Simulator()
    fired = []
    for t in times:
        sim.schedule(t, lambda t=t: fired.append(sim.now))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(times)


@given(
    st.lists(
        st.tuples(delays, st.booleans()),  # (delay, cancel?)
        min_size=1,
        max_size=200,
    )
)
@settings(max_examples=50, deadline=None)
def test_cancelled_events_never_fire_and_others_all_do(entries):
    sim = Simulator()
    fired = []
    expected = 0
    for index, (delay, cancel) in enumerate(entries):
        handle = sim.schedule(delay, lambda index=index: fired.append(index))
        if cancel:
            handle.cancel()
        else:
            expected += 1
    sim.run()
    assert len(fired) == expected
    cancelled_indices = {i for i, (_, c) in enumerate(entries) if c}
    assert cancelled_indices.isdisjoint(fired)


@given(st.lists(st.tuples(delays, st.integers(-5, 5)), min_size=2, max_size=100))
@settings(max_examples=50, deadline=None)
def test_queue_pop_respects_time_priority_sequence_key(entries):
    queue = EventQueue()
    for time, priority in entries:
        queue.push(time, lambda: None, priority=priority)
    popped = []
    while queue:
        event = queue.pop()
        popped.append(event.sort_key)
    assert popped == sorted(popped)


@given(st.lists(delays, min_size=1, max_size=100), st.floats(0.0, 1000.0))
@settings(max_examples=50, deadline=None)
def test_run_until_never_passes_horizon(times, horizon):
    sim = Simulator()
    for t in times:
        sim.schedule(t, lambda: None)
    end = sim.run(until=horizon)
    assert end == horizon
    assert sim.now <= horizon


@given(st.data())
@settings(max_examples=30, deadline=None)
def test_interleaved_schedule_cancel_pop_consistency(data):
    queue = EventQueue()
    live = {}
    counter = 0
    operations = data.draw(st.lists(st.integers(0, 2), min_size=1, max_size=300))
    for op in operations:
        if op == 0:  # push
            t = data.draw(delays)
            handle = queue.push(t, lambda: None, label=str(counter))
            live[counter] = (t, handle)
            counter += 1
        elif op == 1 and live:  # cancel an arbitrary live event
            key = data.draw(st.sampled_from(sorted(live)))
            _, handle = live.pop(key)
            if handle.cancel():
                queue.note_cancellation()
        elif op == 2:  # pop
            event = queue.pop()
            if event is not None:
                live.pop(int(event.label), None)
    # Every remaining live event pops exactly once, in order.
    remaining_times = sorted(t for t, _ in live.values())
    popped_times = []
    while queue:
        popped_times.append(queue.pop().time)
    assert popped_times == remaining_times
