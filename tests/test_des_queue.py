"""Tests for the event queue (ordering, lazy deletion, compaction)."""

from __future__ import annotations

from repro.des.events import EventState
from repro.des.queue import EventQueue


def test_push_pop_ordering():
    queue = EventQueue()
    queue.push(3.0, lambda: None, label="c")
    queue.push(1.0, lambda: None, label="a")
    queue.push(2.0, lambda: None, label="b")
    labels = []
    while queue:
        event = queue.pop()
        labels.append(event.label)
    assert labels == ["a", "b", "c"]


def test_ties_broken_by_priority_then_sequence():
    queue = EventQueue()
    queue.push(1.0, lambda: None, priority=0, label="first")
    queue.push(1.0, lambda: None, priority=-1, label="early")
    queue.push(1.0, lambda: None, priority=0, label="second")
    assert [queue.pop().label for _ in range(3)] == ["early", "first", "second"]


def test_len_counts_live_events():
    queue = EventQueue()
    handles = [queue.push(float(i), lambda: None) for i in range(5)]
    assert len(queue) == 5
    handles[0].cancel()
    queue.note_cancellation()
    assert len(queue) == 4


def test_pop_skips_cancelled():
    queue = EventQueue()
    handle = queue.push(1.0, lambda: None, label="dead")
    queue.push(2.0, lambda: None, label="live")
    handle.cancel()
    queue.note_cancellation()
    event = queue.pop()
    assert event.label == "live"
    assert queue.pop() is None


def test_peek_time_skips_cancelled():
    queue = EventQueue()
    handle = queue.push(1.0, lambda: None)
    queue.push(5.0, lambda: None)
    handle.cancel()
    queue.note_cancellation()
    assert queue.peek_time() == 5.0


def test_pop_empty_returns_none():
    queue = EventQueue()
    assert queue.pop() is None
    assert queue.peek_time() is None


def test_clear():
    queue = EventQueue()
    queue.push(1.0, lambda: None)
    queue.clear()
    assert len(queue) == 0
    assert not queue


def test_popped_event_marked_fired():
    queue = EventQueue()
    queue.push(1.0, lambda: None)
    event = queue.pop()
    assert event.state is EventState.FIRED


def test_compaction_removes_dead_entries():
    queue = EventQueue()
    handles = [queue.push(float(i), lambda: None) for i in range(4096)]
    for handle in handles[: 3000]:
        handle.cancel()
        queue.note_cancellation()
    # Compaction triggered: raw heap no longer holds all dead entries.
    assert queue.heap_size < 4096
    assert len(queue) == 1096
    # Remaining events still pop in order.
    first = queue.pop()
    assert first.time == 3000.0


def test_many_interleaved_push_cancel_pop():
    queue = EventQueue()
    kept = []
    for i in range(200):
        handle = queue.push(float(200 - i), lambda: None, label=str(200 - i))
        if i % 3 == 0:
            handle.cancel()
            queue.note_cancellation()
        else:
            kept.append(200 - i)
    popped = []
    while queue:
        popped.append(int(queue.pop().label))
    assert popped == sorted(kept)
