"""Property tests: backoff schedules are deterministic and strictly bounded.

The supervised pool's retry timing comes entirely from
:meth:`RetryPolicy.backoff_delay` — a pure function of (policy seed, task
key, attempt).  Determinism is what makes the fault-injection suite
reproducible; the bound is what keeps a worst-case retry storm from
stalling a campaign.  Hypothesis drives both with arbitrary policies and
keys.  The quarantine property — a task that exhausts its attempts never
re-enters the queue — is checked against the real supervisor on the fast
serial path.
"""

from __future__ import annotations

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st

from repro.core import (
    NetworkParameters,
    ScenarioConfig,
    UserParameters,
    VirusParameters,
)
from repro.faults import FaultPlan, FaultSpec
from repro.resilience import RetryPolicy, SupervisedWorkerPool


def policy_strategy():
    base = st.floats(min_value=0.0, max_value=5.0, allow_nan=False)
    return st.builds(
        RetryPolicy,
        max_retries=st.integers(0, 6),
        backoff_base=base,
        backoff_factor=st.floats(min_value=1.0, max_value=8.0, allow_nan=False),
        backoff_cap=st.floats(min_value=5.0, max_value=60.0, allow_nan=False),
        jitter=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        seed=st.integers(0, 2**31),
    )


KEYS = st.text(
    alphabet=st.characters(min_codepoint=33, max_codepoint=126),
    min_size=1,
    max_size=64,
)


class TestBackoffProperties:
    @given(policy=policy_strategy(), key=KEYS, attempt=st.integers(1, 12))
    @settings(max_examples=200, deadline=None)
    def test_deterministic_for_fixed_seed(self, policy, key, attempt):
        # Same policy (same seed) -> bit-identical delay, call after call,
        # and an independently constructed equal policy agrees.
        first = policy.backoff_delay(key, attempt)
        assert policy.backoff_delay(key, attempt) == first
        clone = RetryPolicy(**policy.to_dict())
        assert clone.backoff_delay(key, attempt) == first

    @given(policy=policy_strategy(), key=KEYS, attempt=st.integers(1, 12))
    @settings(max_examples=200, deadline=None)
    def test_strictly_bounded(self, policy, key, attempt):
        delay = policy.backoff_delay(key, attempt)
        assert 0.0 <= delay <= policy.max_backoff
        # The jittered delay never undershoots the floor of the schedule.
        raw = min(
            policy.backoff_base * policy.backoff_factor ** (attempt - 1),
            policy.backoff_cap,
        )
        assert delay >= raw * (1.0 - policy.jitter / 2.0)

    @given(policy=policy_strategy(), key=KEYS)
    @settings(max_examples=100, deadline=None)
    def test_schedule_monotone_before_cap(self, policy, key):
        # Ignoring jitter, the underlying schedule never decreases until
        # the cap truncates it; with jitter the bound still holds
        # attempt-by-attempt against max_backoff.
        for attempt in range(1, policy.max_retries + 2):
            assert policy.backoff_delay(key, attempt) <= policy.max_backoff

    @given(seed_a=st.integers(0, 1000), seed_b=st.integers(0, 1000))
    @settings(max_examples=50, deadline=None)
    def test_seed_changes_jitter(self, seed_a, seed_b):
        a = RetryPolicy(seed=seed_a, jitter=1.0, backoff_base=1.0)
        b = RetryPolicy(seed=seed_b, jitter=1.0, backoff_base=1.0)
        delays_a = [a.backoff_delay("k", n) for n in range(1, 6)]
        delays_b = [b.backoff_delay("k", n) for n in range(1, 6)]
        if seed_a == seed_b:
            assert delays_a == delays_b
        else:
            assert delays_a != delays_b


class TestPolicyValidation:
    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(task_timeout=0.0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_base=2.0, backoff_cap=1.0)

    def test_max_attempts(self):
        assert RetryPolicy(max_retries=0).max_attempts == 1
        assert RetryPolicy(max_retries=3).max_attempts == 4

    def test_attempt_must_be_positive(self):
        with pytest.raises(ValueError):
            RetryPolicy().backoff_delay("k", 0)


class TestQuarantineNeverReenters:
    """A quarantined task gets exactly ``max_attempts`` executions and is
    never queued again — the campaign must not loop on a permanently
    broken replication."""

    @pytest.fixture
    def tiny_jobs(self):
        config = ScenarioConfig(
            name="quarantine-test",
            virus=VirusParameters(
                name="q-virus", min_send_interval=0.05, extra_send_delay_mean=0.05
            ),
            network=NetworkParameters(population=40, mean_contact_list_size=6.0),
            user=UserParameters(read_delay_mean=0.1),
            duration=2.0,
        )
        return [(i, config, 1, i) for i in range(3)]

    @pytest.mark.parametrize("max_retries", [0, 1, 2])
    def test_exactly_max_attempts_failures(self, tiny_jobs, max_retries):
        policy = RetryPolicy(
            max_retries=max_retries, backoff_base=0.0, backoff_cap=0.0
        )
        # Task 1 fails on *every* attempt number it could ever see.
        plan = FaultPlan({1: FaultSpec(raise_attempts=tuple(range(20)))})
        pool = SupervisedWorkerPool(
            1, policy=policy, faults={1: plan.spec_for(1)}
        )
        report = pool.run(tiny_jobs)
        assert report.quarantined == [1]
        failures = [e for e in report.events if e.task_id == 1]
        # One failure event per attempt, not one more: never re-queued.
        assert len(failures) == policy.max_attempts
        assert [e.attempt for e in failures] == list(range(policy.max_attempts))
        assert failures[-1].action == "quarantine"
        assert all(e.action == "retry" for e in failures[:-1])
        # The healthy tasks still completed exactly once.
        assert sorted(report.results) == [0, 2]
