"""Tests for growth-rate / R0 estimation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (
    StepCurve,
    doubling_time,
    estimate_r0,
    exponential_growth_rate,
)


def exponential_then_plateau(rate=0.2, cap=320.0, horizon=100.0) -> StepCurve:
    times = np.linspace(0.01, horizon, 600)
    values = np.minimum(np.exp(rate * times), cap)
    return StepCurve([(0.0, 1.0)] + list(zip(times.tolist(), values.tolist())))


class TestGrowthRate:
    def test_recovers_known_rate(self):
        curve = exponential_then_plateau(rate=0.2)
        fitted = exponential_growth_rate(curve)
        assert fitted == pytest.approx(0.2, rel=0.1)

    def test_doubling_time(self):
        curve = exponential_then_plateau(rate=np.log(2.0) / 5.0)  # doubling 5 h
        assert doubling_time(curve) == pytest.approx(5.0, rel=0.15)

    def test_faster_epidemic_higher_rate(self):
        slow = exponential_then_plateau(rate=0.05)
        fast = exponential_then_plateau(rate=0.5)
        assert exponential_growth_rate(fast) > exponential_growth_rate(slow)

    def test_flat_curve_returns_none(self):
        assert exponential_growth_rate(StepCurve.constant(0.0)) is None
        assert doubling_time(StepCurve.constant(5.0)) is None

    def test_too_few_points_returns_none(self):
        curve = StepCurve([(0.0, 1.0), (1.0, 320.0)])
        assert exponential_growth_rate(curve) is None

    def test_window_validation(self):
        curve = exponential_then_plateau()
        with pytest.raises(ValueError):
            exponential_growth_rate(curve, lower_fraction=0.5, upper_fraction=0.1)


class TestR0:
    def test_euler_lotka_identity(self):
        curve = exponential_then_plateau(rate=0.2)
        r0 = estimate_r0(curve, generation_time=2.0)
        assert r0 == pytest.approx(np.exp(0.2 * 2.0), rel=0.12)

    def test_generation_time_validation(self):
        with pytest.raises(ValueError):
            estimate_r0(exponential_then_plateau(), generation_time=0.0)

    def test_simulated_virus_ordering(self):
        """V3's growth rate dwarfs V1's in actual simulations."""
        from repro.core import NetworkParameters, baseline_scenario
        from repro.core.simulation import run_scenario

        network = NetworkParameters(population=300, mean_contact_list_size=24.0)
        rate1 = exponential_growth_rate(
            run_scenario(baseline_scenario(1, network=network), seed=8).curve()
        )
        rate3 = exponential_growth_rate(
            run_scenario(baseline_scenario(3, network=network), seed=8).curve()
        )
        assert rate1 is not None and rate3 is not None
        assert rate3 > 3 * rate1
