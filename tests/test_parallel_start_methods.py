"""Parallel replication must be bit-identical to serial under fork AND spawn.

``replicate_scenario_parallel`` promises results identical to the serial
path.  That promise must hold regardless of the multiprocessing start
method: ``fork`` inherits the parent's module state while ``spawn``
re-imports everything in a fresh interpreter, so any hidden global (a
module-level RNG, a mutated default, an import-order effect) breaks one
but not the other.  The serialized result documents are compared field
by field — bit-identical, not statistically close.
"""

from __future__ import annotations

import multiprocessing

import pytest

from repro.core import (
    NetworkParameters,
    ScenarioConfig,
    Targeting,
    UserParameters,
    VirusParameters,
)
from repro.core.parallel import (
    START_METHOD_ENV,
    mp_context,
    replicate_scenario_parallel,
)
from repro.core.serialization import result_to_dict
from repro.core.simulation import replicate_scenario

REPLICATIONS = 3
SEED = 13


@pytest.fixture
def quick_scenario() -> ScenarioConfig:
    """Small enough that spawn's interpreter startup dominates, not the DES."""
    return ScenarioConfig(
        name="start-method-test",
        virus=VirusParameters(
            name="quick-virus",
            targeting=Targeting.CONTACT_LIST,
            recipients_per_message=1,
            min_send_interval=0.1,
            extra_send_delay_mean=0.1,
        ),
        network=NetworkParameters(population=80, mean_contact_list_size=12.0),
        user=UserParameters(read_delay_mean=0.1),
        duration=10.0,
    )


def _serial_documents(config: ScenarioConfig) -> list:
    serial = replicate_scenario(config, replications=REPLICATIONS, seed=SEED)
    return [result_to_dict(r) for r in serial.results]


@pytest.mark.parametrize("method", ["fork", "spawn"])
def test_parallel_matches_serial_bit_identically(
    method, quick_scenario, monkeypatch
):
    if method not in multiprocessing.get_all_start_methods():
        pytest.skip(f"start method {method!r} unavailable on this platform")
    monkeypatch.setenv(START_METHOD_ENV, method)
    assert mp_context().get_start_method() == method

    parallel = replicate_scenario_parallel(
        quick_scenario, replications=REPLICATIONS, seed=SEED, processes=2
    )
    assert [result_to_dict(r) for r in parallel.results] == _serial_documents(
        quick_scenario
    )


def test_env_override_rejects_unknown_method(monkeypatch):
    monkeypatch.setenv(START_METHOD_ENV, "not-a-method")
    with pytest.raises(ValueError):
        mp_context()
