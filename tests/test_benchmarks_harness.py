"""Tests for the benchmark harness (registry, comparison, smoke gate).

The regression-comparison logic is tested purely; actually *running*
workloads is slow, so those tests carry the ``bench`` marker and stay out
of tier-1 (`pytest -q` deselects them via the configured addopts).
"""

from __future__ import annotations

import json

import pytest

from repro.benchmarks import (
    WORKLOADS,
    WorkloadResult,
    bench_path,
    compare_to_baseline,
    load_bench,
    run_workloads,
    workload_names,
    write_bench,
)
from repro.benchmarks.harness import main as bench_main


def _document(label, walls):
    return {
        "label": label,
        "schema": 1,
        "workloads": {
            name: {"wall_seconds": wall, "events": 100, "events_per_second": 1.0}
            for name, wall in walls.items()
        },
    }


class TestRegistry:
    def test_expected_workloads_registered(self):
        names = workload_names()
        assert "fig1-v1-single" in names
        assert "fig1-v3-single" in names
        assert "fig3-experiment" in names
        assert "scaling-2000" in names

    def test_smoke_subset_nonempty_and_proper(self):
        smoke = workload_names(smoke_only=True)
        assert smoke
        assert set(smoke) < set(workload_names())

    def test_unknown_workload_rejected(self):
        with pytest.raises(KeyError, match="unknown workloads"):
            run_workloads(["no-such-workload"], label="x")


class TestWorkloadResult:
    def test_events_per_second(self):
        result = WorkloadResult(name="w", wall_seconds=2.0, events=100)
        assert result.events_per_second == 50.0

    def test_zero_guard(self):
        assert WorkloadResult(name="w", wall_seconds=0.0, events=5).events_per_second == 0.0
        assert WorkloadResult(name="w", wall_seconds=1.0, events=0).events_per_second == 0.0

    def test_to_dict_shape(self):
        document = WorkloadResult(name="w", wall_seconds=1.5, events=3).to_dict()
        assert set(document) == {"wall_seconds", "events", "events_per_second", "detail"}


class TestComparison:
    def test_no_regression(self):
        current = _document("now", {"a": 1.0, "b": 2.0})
        baseline = _document("base", {"a": 1.0, "b": 2.0})
        assert compare_to_baseline(current, baseline, factor=2.0) == []

    def test_regression_flagged(self):
        current = _document("now", {"a": 5.0})
        baseline = _document("base", {"a": 1.0})
        regressions = compare_to_baseline(current, baseline, factor=2.0)
        assert len(regressions) == 1
        assert regressions[0]["name"] == "a"
        assert regressions[0]["ratio"] == 5.0

    def test_factor_boundary_not_flagged(self):
        current = _document("now", {"a": 2.0})
        baseline = _document("base", {"a": 1.0})
        assert compare_to_baseline(current, baseline, factor=2.0) == []

    def test_unshared_workloads_ignored(self):
        current = _document("now", {"new-workload": 100.0})
        baseline = _document("base", {"old-workload": 0.01})
        assert compare_to_baseline(current, baseline, factor=2.0) == []

    def test_bad_factor_rejected(self):
        with pytest.raises(ValueError):
            compare_to_baseline(_document("a", {}), _document("b", {}), factor=0)


class TestDocumentIO:
    def test_write_and_load_round_trip(self, tmp_path):
        document = _document("unit", {"a": 1.0})
        path = write_bench(document, tmp_path)
        assert path == bench_path("unit", tmp_path)
        assert load_bench(path) == document

    def test_smoke_cli_missing_baseline(self, tmp_path, capsys):
        code = bench_main(["smoke", "--baseline", str(tmp_path / "nope.json")])
        assert code == 2
        assert "not found" in capsys.readouterr().err


@pytest.mark.bench
class TestBenchExecution:
    """Actually runs simulations — excluded from tier-1 by the bench marker."""

    def test_smoke_suite_runs_and_gates(self, tmp_path, capsys):
        document = run_workloads(
            workload_names(smoke_only=True), label="unit-smoke", processes=1
        )
        path = write_bench(document, tmp_path)
        # Comparing a run against itself can never regress.
        assert bench_main(["smoke", "--baseline", str(path)]) == 0
        assert "smoke ok" in capsys.readouterr().out

    def test_regression_exit_code(self, tmp_path, capsys):
        document = run_workloads(["fig1-v1-single"], label="fast", processes=1)
        # Fabricate an impossibly fast baseline to force the gate to trip.
        forged = json.loads(json.dumps(document))
        for entry in forged["workloads"].values():
            entry["wall_seconds"] = 1e-6
        forged["label"] = "forged"
        path = write_bench(forged, tmp_path)
        code = bench_main(["smoke", "--baseline", str(path)])
        assert code == 1
        assert "REGRESSION" in capsys.readouterr().err


class TestManifestEmission:
    """Manifest side-channel of ``run_workloads`` using an instant fake
    workload, so tier-1 stays fast."""

    @staticmethod
    def _fake_workload(name="fake-instant"):
        from repro.benchmarks.harness import Workload

        def runner(processes):
            return WorkloadResult(
                name=name, wall_seconds=0.01, events=500, detail={"fake": True}
            )

        return Workload(
            name=name, description="instant stub", smoke=True, runner=runner
        )

    def test_manifest_record_per_workload(self, tmp_path, monkeypatch):
        from repro.benchmarks import harness
        from repro.obs.manifest import read_manifests, validate_manifest

        monkeypatch.setitem(
            harness.WORKLOADS, "fake-instant", self._fake_workload()
        )
        path = tmp_path / "bench.jsonl"
        run_workloads(
            ["fake-instant"], label="unit", processes=1, manifest_path=path
        )
        (record,) = read_manifests(path)
        assert validate_manifest(record) == []
        assert record["kind"] == "benchmark"
        assert record["label"] == "unit:fake-instant"
        assert record["events_executed"] == 500
        assert record["extra"]["detail"] == {"fake": True}

    def test_bench_document_gains_host_and_schema(self, monkeypatch):
        from repro.benchmarks import harness
        from repro.obs.manifest import MANIFEST_SCHEMA_VERSION

        monkeypatch.setitem(
            harness.WORKLOADS, "fake-instant", self._fake_workload()
        )
        document = run_workloads(["fake-instant"], label="unit", processes=1)
        assert document["schema"] == harness.BENCH_SCHEMA_VERSION
        assert document["manifest_schema"] == MANIFEST_SCHEMA_VERSION
        assert "python" in document["host"]
        assert "cpu_count" in document["host"]
