"""Tests for the benchmark harness (registry, comparison, smoke gate).

The regression-comparison logic is tested purely; actually *running*
workloads is slow, so those tests carry the ``bench`` marker and stay out
of tier-1 (`pytest -q` deselects them via the configured addopts).
"""

from __future__ import annotations

import json

import pytest

from repro.benchmarks import (
    WORKLOADS,
    WorkloadResult,
    bench_path,
    compare_to_baseline,
    load_bench,
    run_workloads,
    workload_names,
    write_bench,
)
from repro.benchmarks.harness import main as bench_main


def _document(label, walls):
    return {
        "label": label,
        "schema": 1,
        "workloads": {
            name: {"wall_seconds": wall, "events": 100, "events_per_second": 1.0}
            for name, wall in walls.items()
        },
    }


class TestRegistry:
    def test_expected_workloads_registered(self):
        names = workload_names()
        assert "fig1-v1-single" in names
        assert "fig1-v3-single" in names
        assert "fig3-experiment" in names
        assert "scaling-2000" in names

    def test_smoke_subset_nonempty_and_proper(self):
        smoke = workload_names(smoke_only=True)
        assert smoke
        assert set(smoke) < set(workload_names())

    def test_unknown_workload_rejected(self):
        with pytest.raises(KeyError, match="unknown workloads"):
            run_workloads(["no-such-workload"], label="x")


class TestWorkloadResult:
    def test_events_per_second(self):
        result = WorkloadResult(name="w", wall_seconds=2.0, events=100)
        assert result.events_per_second == 50.0

    def test_zero_guard(self):
        assert WorkloadResult(name="w", wall_seconds=0.0, events=5).events_per_second == 0.0
        assert WorkloadResult(name="w", wall_seconds=1.0, events=0).events_per_second == 0.0

    def test_to_dict_shape(self):
        document = WorkloadResult(name="w", wall_seconds=1.5, events=3).to_dict()
        assert set(document) == {"wall_seconds", "events", "events_per_second", "detail"}


class TestComparison:
    def test_no_regression(self):
        current = _document("now", {"a": 1.0, "b": 2.0})
        baseline = _document("base", {"a": 1.0, "b": 2.0})
        assert compare_to_baseline(current, baseline, factor=2.0) == []

    def test_regression_flagged(self):
        current = _document("now", {"a": 5.0})
        baseline = _document("base", {"a": 1.0})
        regressions = compare_to_baseline(current, baseline, factor=2.0)
        assert len(regressions) == 1
        assert regressions[0]["name"] == "a"
        assert regressions[0]["ratio"] == 5.0

    def test_factor_boundary_not_flagged(self):
        current = _document("now", {"a": 2.0})
        baseline = _document("base", {"a": 1.0})
        assert compare_to_baseline(current, baseline, factor=2.0) == []

    def test_unshared_workloads_ignored(self):
        current = _document("now", {"new-workload": 100.0})
        baseline = _document("base", {"old-workload": 0.01})
        assert compare_to_baseline(current, baseline, factor=2.0) == []

    def test_bad_factor_rejected(self):
        with pytest.raises(ValueError):
            compare_to_baseline(_document("a", {}), _document("b", {}), factor=0)


class TestDocumentIO:
    def test_write_and_load_round_trip(self, tmp_path):
        document = _document("unit", {"a": 1.0})
        path = write_bench(document, tmp_path)
        assert path == bench_path("unit", tmp_path)
        assert load_bench(path) == document

    def test_smoke_cli_missing_baseline(self, tmp_path, capsys):
        code = bench_main(["smoke", "--baseline", str(tmp_path / "nope.json")])
        assert code == 2
        assert "not found" in capsys.readouterr().err


@pytest.mark.bench
class TestBenchExecution:
    """Actually runs simulations — excluded from tier-1 by the bench marker."""

    def test_smoke_suite_runs_and_gates(self, tmp_path, capsys):
        document = run_workloads(
            workload_names(smoke_only=True), label="unit-smoke", processes=1
        )
        path = write_bench(document, tmp_path)
        # Comparing a run against itself can never regress.
        assert bench_main(["smoke", "--baseline", str(path)]) == 0
        assert "smoke ok" in capsys.readouterr().out

    def test_regression_exit_code(self, tmp_path, capsys):
        document = run_workloads(["fig1-v1-single"], label="fast", processes=1)
        # Fabricate an impossibly fast baseline to force the gate to trip.
        forged = json.loads(json.dumps(document))
        for entry in forged["workloads"].values():
            entry["wall_seconds"] = 1e-6
        forged["label"] = "forged"
        path = write_bench(forged, tmp_path)
        code = bench_main(["smoke", "--baseline", str(path)])
        assert code == 1
        assert "REGRESSION" in capsys.readouterr().err


class TestManifestEmission:
    """Manifest side-channel of ``run_workloads`` using an instant fake
    workload, so tier-1 stays fast."""

    @staticmethod
    def _fake_workload(name="fake-instant"):
        from repro.benchmarks.harness import Workload

        def runner(processes):
            return WorkloadResult(
                name=name, wall_seconds=0.01, events=500, detail={"fake": True}
            )

        return Workload(
            name=name, description="instant stub", smoke=True, runner=runner
        )

    def test_manifest_record_per_workload(self, tmp_path, monkeypatch):
        from repro.benchmarks import harness
        from repro.obs.manifest import read_manifests, validate_manifest

        monkeypatch.setitem(
            harness.WORKLOADS, "fake-instant", self._fake_workload()
        )
        path = tmp_path / "bench.jsonl"
        run_workloads(
            ["fake-instant"], label="unit", processes=1, manifest_path=path
        )
        (record,) = read_manifests(path)
        assert validate_manifest(record) == []
        assert record["kind"] == "benchmark"
        assert record["label"] == "unit:fake-instant"
        assert record["events_executed"] == 500
        assert record["extra"]["detail"] == {"fake": True}

    def test_bench_document_gains_host_and_schema(self, monkeypatch):
        from repro.benchmarks import harness
        from repro.obs.manifest import MANIFEST_SCHEMA_VERSION

        monkeypatch.setitem(
            harness.WORKLOADS, "fake-instant", self._fake_workload()
        )
        document = run_workloads(["fake-instant"], label="unit", processes=1)
        assert document["schema"] == harness.BENCH_SCHEMA_VERSION
        assert document["manifest_schema"] == MANIFEST_SCHEMA_VERSION
        assert "python" in document["host"]
        assert "cpu_count" in document["host"]


class TestCompareDocuments:
    def _docs(self):
        from repro.benchmarks.harness import compare_documents

        baseline = _document("old", {"a": 1.0, "b": 2.0, "gone": 3.0})
        current = _document("new", {"a": 1.05, "b": 2.5, "fresh": 0.5})
        return compare_documents, baseline, current

    def test_statuses_and_deltas(self):
        compare_documents, baseline, current = self._docs()
        rows = {r["name"]: r for r in compare_documents(baseline, current)}
        assert rows["a"]["status"] == "ok"
        assert rows["a"]["delta_pct"] == 5.0
        assert rows["b"]["status"] == "regressed"  # +25% > default 10%
        assert rows["b"]["delta_pct"] == 25.0
        assert rows["fresh"]["status"] == "added"
        assert rows["gone"]["status"] == "removed"

    def test_threshold_configurable(self):
        compare_documents, baseline, current = self._docs()
        rows = {
            r["name"]: r
            for r in compare_documents(baseline, current, threshold_pct=40.0)
        }
        assert rows["b"]["status"] == "ok"  # +25% rides under a 40% gate

    def test_negative_threshold_rejected(self):
        from repro.benchmarks.harness import compare_documents

        with pytest.raises(ValueError, match="threshold_pct"):
            compare_documents(_document("a", {}), _document("b", {}), -1.0)

    def test_format_renders_every_row(self):
        from repro.benchmarks.harness import format_comparison

        compare_documents, baseline, current = self._docs()
        rows = compare_documents(baseline, current)
        table = format_comparison(rows)
        for row in rows:
            assert row["name"] in table
        assert "regressed" in table


class TestCheckFloors:
    def test_floor_held_and_violated(self):
        from repro.benchmarks.harness import check_floors

        document = _document("x", {"a": 1.0})
        document["workloads"]["a"]["events_per_second"] = 500.0
        assert check_floors(document, ["a:100"]) == []
        failures = check_floors(document, ["a:1000"])
        assert len(failures) == 1 and "below" in failures[0]

    def test_missing_workload_fails_the_floor(self):
        from repro.benchmarks.harness import check_floors

        failures = check_floors(_document("x", {}), ["ghost:1"])
        assert failures and "not present" in failures[0]

    def test_malformed_floor_rejected(self):
        from repro.benchmarks.harness import check_floors

        with pytest.raises(ValueError, match="invalid floor"):
            check_floors(_document("x", {}), ["a:not-a-number"])


class TestCompareCLI:
    def _write(self, tmp_path, name, walls, rates=None):
        document = _document(name, walls)
        for workload, rate in (rates or {}).items():
            document["workloads"][workload]["events_per_second"] = rate
        path = tmp_path / f"BENCH_{name}.json"
        path.write_text(json.dumps(document))
        return str(path)

    def test_ok_exit_zero(self, tmp_path, capsys):
        old = self._write(tmp_path, "old", {"a": 1.0})
        new = self._write(tmp_path, "new", {"a": 1.05})
        assert bench_main(["compare", old, new]) == 0
        out = capsys.readouterr().out
        assert "compare ok" in out

    def test_regression_exit_one(self, tmp_path, capsys):
        old = self._write(tmp_path, "old", {"a": 1.0})
        new = self._write(tmp_path, "new", {"a": 1.5})
        assert bench_main(["compare", old, new, "--threshold", "20"]) == 1
        captured = capsys.readouterr()
        assert "REGRESSION a" in captured.err

    def test_floor_violation_exit_one(self, tmp_path, capsys):
        old = self._write(tmp_path, "old", {"a": 1.0})
        new = self._write(tmp_path, "new", {"a": 1.0}, rates={"a": 50.0})
        assert bench_main(["compare", old, new, "--floor", "a:100"]) == 1
        assert "FLOOR a" in capsys.readouterr().err

    def test_missing_document_exit_two(self, tmp_path, capsys):
        old = self._write(tmp_path, "old", {"a": 1.0})
        assert bench_main(["compare", old, str(tmp_path / "nope.json")]) == 2
        assert "not found" in capsys.readouterr().err
