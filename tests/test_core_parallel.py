"""Tests for the parallel replication runner."""

from __future__ import annotations

import pytest

from repro.core.parallel import default_process_count, replicate_scenario_parallel
from repro.core.simulation import replicate_scenario


def test_serial_fallback_matches_reference(small_scenario):
    serial = replicate_scenario(small_scenario, replications=2, seed=9)
    fallback = replicate_scenario_parallel(
        small_scenario, replications=2, seed=9, processes=1
    )
    assert fallback.final_infected() == serial.final_infected()
    assert [r.infection_times for r in fallback.results] == [
        r.infection_times for r in serial.results
    ]


def test_parallel_matches_serial(small_scenario):
    serial = replicate_scenario(small_scenario, replications=3, seed=4)
    parallel = replicate_scenario_parallel(
        small_scenario, replications=3, seed=4, processes=2
    )
    assert parallel.final_infected() == serial.final_infected()
    assert parallel.replications == 3
    # Replication indices preserved in order.
    assert [r.replication for r in parallel.results] == [0, 1, 2]


def test_default_process_count_positive():
    assert default_process_count() >= 1


def test_validation(small_scenario):
    with pytest.raises(ValueError):
        replicate_scenario_parallel(small_scenario, replications=0)
    with pytest.raises(ValueError):
        replicate_scenario_parallel(small_scenario, replications=2, processes=0)
