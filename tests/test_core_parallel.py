"""Tests for the parallel replication runner."""

from __future__ import annotations

import multiprocessing
import os
import time

import pytest

from repro.core import parallel
from repro.core.parallel import (
    START_METHOD_ENV,
    WorkerPool,
    default_process_count,
    replicate_scenario_parallel,
)
from repro.core.simulation import replicate_scenario


def test_serial_fallback_matches_reference(small_scenario):
    serial = replicate_scenario(small_scenario, replications=2, seed=9)
    fallback = replicate_scenario_parallel(
        small_scenario, replications=2, seed=9, processes=1
    )
    assert fallback.final_infected() == serial.final_infected()
    assert [r.infection_times for r in fallback.results] == [
        r.infection_times for r in serial.results
    ]


def test_parallel_matches_serial(small_scenario):
    serial = replicate_scenario(small_scenario, replications=3, seed=4)
    parallel = replicate_scenario_parallel(
        small_scenario, replications=3, seed=4, processes=2
    )
    assert parallel.final_infected() == serial.final_infected()
    assert parallel.replications == 3
    # Replication indices preserved in order.
    assert [r.replication for r in parallel.results] == [0, 1, 2]


def test_default_process_count_positive():
    assert default_process_count() >= 1


def test_validation(small_scenario):
    with pytest.raises(ValueError):
        replicate_scenario_parallel(small_scenario, replications=0)
    with pytest.raises(ValueError):
        replicate_scenario_parallel(small_scenario, replications=2, processes=0)


def _slow_marker_job(job):
    """Substitute worker: records completion on disk (directory via env)."""
    index = job[0]
    time.sleep(0.05)
    marker_dir = os.environ["REPRO_TEST_MARKER_DIR"]
    with open(os.path.join(marker_dir, f"done-{index}"), "w") as handle:
        handle.write(str(index))
    return index, None


def test_close_drains_dispatched_jobs(small_scenario, tmp_path, monkeypatch):
    """Regression: ``close()`` must let already-dispatched jobs finish.

    The pool used to call ``Pool.terminate()`` on clean shutdown, which
    kills workers mid-chunk — jobs that had been handed out but not yet
    yielded were silently dropped.  This dispatches slow jobs that leave
    marker files, consumes only the first completion, closes the pool,
    and requires every job to have completed.
    """
    if "fork" not in multiprocessing.get_all_start_methods():
        pytest.skip("fork start method required to inherit the patched worker")
    monkeypatch.setenv(START_METHOD_ENV, "fork")
    monkeypatch.setenv("REPRO_TEST_MARKER_DIR", str(tmp_path))
    monkeypatch.setattr(parallel, "_run_indexed", _slow_marker_job)

    job_count = 6
    jobs = ((index, small_scenario, 0, index) for index in range(job_count))
    pool = WorkerPool(processes=2)
    try:
        completions = pool.imap_indexed(jobs, job_count=job_count)
        next(completions)  # dispatch has started; rest remain in flight
    finally:
        pool.close()
    done = sorted(int(p.name.split("-")[1]) for p in tmp_path.glob("done-*"))
    assert done == list(range(job_count))


def test_exception_exit_terminates_without_draining(small_scenario):
    """The context manager still tears down hard on exception paths."""
    with pytest.raises(RuntimeError, match="boom"):
        with WorkerPool(processes=2) as pool:
            raise RuntimeError("boom")
    assert pool._pool is None


class TestTimedDispatch:
    def test_serial_sidecars(self, small_scenario):
        jobs = [(i, small_scenario, 3, i) for i in range(2)]
        with WorkerPool(processes=1) as pool:
            completions = list(pool.imap_indexed_timed(iter(jobs), job_count=2))
        assert sorted(c[0] for c in completions) == [0, 1]
        for _, result, sidecar in completions:
            assert sidecar["pid"] == os.getpid()
            assert sidecar["wall_seconds"] > 0
            counters = sidecar["metrics"]["counters"]
            assert counters["des.events_fired"] > 0

    def test_results_identical_to_untimed(self, small_scenario):
        jobs = [(i, small_scenario, 7, i) for i in range(3)]
        with WorkerPool(processes=1) as pool:
            untimed = dict(pool.imap_indexed(iter(jobs), job_count=3))
        with WorkerPool(processes=2) as pool:
            timed = {
                index: result
                for index, result, _ in pool.imap_indexed_timed(
                    iter(jobs), job_count=3
                )
            }
        assert set(timed) == set(untimed)
        for index in untimed:
            assert timed[index].counters == untimed[index].counters
            assert (
                timed[index].infection_times == untimed[index].infection_times
            )

    def test_parallel_sidecars_report_worker_pids(self, small_scenario):
        jobs = [(i, small_scenario, 1, i) for i in range(3)]
        with WorkerPool(processes=2) as pool:
            sidecars = [
                sidecar
                for _, _, sidecar in pool.imap_indexed_timed(
                    iter(jobs), job_count=3
                )
            ]
        assert len(sidecars) == 3
        assert all(sidecar["pid"] != os.getpid() for sidecar in sidecars)
