"""Tests for statistics helpers and epidemic-curve analysis."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.analysis import (
    StepCurve,
    containment_ratio,
    delay_to_level,
    expected_plateau,
    growth_concentration,
    is_s_shaped,
    plateau_reached,
    ratio,
    relative_change,
    summarize,
    summarize_epidemic,
    welch_t_test,
)


class TestSummarize:
    def test_basic_statistics(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0])
        assert summary.mean == 2.5
        assert summary.minimum == 1.0
        assert summary.maximum == 4.0
        assert summary.count == 4
        assert summary.ci_lower < 2.5 < summary.ci_upper

    def test_single_observation_degenerates(self):
        summary = summarize([7.0])
        assert summary.mean == 7.0
        assert summary.ci_half_width == 0.0

    def test_ci_contains_true_mean_usually(self):
        rng = np.random.default_rng(0)
        hits = 0
        for _ in range(200):
            sample = rng.normal(10.0, 2.0, size=10)
            summary = summarize(sample.tolist(), confidence=0.95)
            if summary.ci_lower <= 10.0 <= summary.ci_upper:
                hits += 1
        assert hits >= 180  # ≈ 95% coverage

    def test_format(self):
        assert "n=3" in summarize([1.0, 2.0, 3.0]).format("phones")

    def test_validation(self):
        with pytest.raises(ValueError):
            summarize([])
        with pytest.raises(ValueError):
            summarize([1.0], confidence=1.5)


class TestRatios:
    def test_relative_change(self):
        assert relative_change(150.0, 100.0) == pytest.approx(0.5)
        assert relative_change(0.0, 0.0) == 0.0
        assert math.isinf(relative_change(1.0, 0.0))

    def test_ratio(self):
        assert ratio(50.0, 100.0) == 0.5
        assert ratio(0.0, 0.0) == 1.0
        assert math.isinf(ratio(1.0, 0.0))


class TestWelch:
    def test_distinguishes_different_means(self):
        rng = np.random.default_rng(1)
        a = rng.normal(10, 1, 30).tolist()
        b = rng.normal(14, 1, 30).tolist()
        _, p = welch_t_test(a, b)
        assert p < 0.001

    def test_same_distribution_not_significant(self):
        rng = np.random.default_rng(2)
        a = rng.normal(10, 1, 30).tolist()
        b = rng.normal(10, 1, 30).tolist()
        _, p = welch_t_test(a, b)
        assert p > 0.01

    def test_needs_two_observations(self):
        with pytest.raises(ValueError):
            welch_t_test([1.0], [1.0, 2.0])


def logistic_curve(final=320.0, rate=0.08, midpoint=80.0, end=432.0) -> StepCurve:
    times = np.linspace(0, end, 400)
    values = final / (1 + np.exp(-rate * (times - midpoint)))
    return StepCurve(list(zip(times.tolist(), values.tolist())))


class TestEpidemicMeasures:
    def test_summary(self):
        curve = logistic_curve()
        summary = summarize_epidemic(curve, susceptible=800)
        assert summary.final_infected == pytest.approx(320.0, rel=0.01)
        assert summary.penetration == pytest.approx(0.4, abs=0.01)
        assert summary.time_to_half_final == pytest.approx(80.0, abs=5.0)
        assert summary.time_to_90pct_final > summary.time_to_half_final

    def test_containment_ratio(self):
        baseline = logistic_curve(final=320.0)
        contained = logistic_curve(final=16.0)
        assert containment_ratio(contained, baseline) == pytest.approx(0.05, abs=0.01)

    def test_delay_to_level(self):
        fast = logistic_curve(midpoint=50.0)
        slow = logistic_curve(midpoint=150.0)
        delay = delay_to_level(slow, fast, level=160.0)
        assert delay == pytest.approx(100.0, abs=5.0)

    def test_delay_none_when_never_reached(self):
        baseline = logistic_curve(final=320.0)
        contained = logistic_curve(final=50.0)
        assert delay_to_level(contained, baseline, level=160.0) is None

    def test_delay_requires_baseline_reaching(self):
        low = logistic_curve(final=50.0)
        with pytest.raises(ValueError):
            delay_to_level(low, low, level=160.0)

    def test_s_shape_detection(self):
        assert is_s_shaped(logistic_curve())
        linear = StepCurve([(0.0, 0.0), (432.0, 320.0)])
        # A pure two-point step is technically monotone; growth happens
        # in one jump, middle third compares fine — use a decreasing check.
        decreasing = StepCurve([(0.0, 5.0), (1.0, 3.0)])
        assert not is_s_shaped(decreasing)
        assert not is_s_shaped(StepCurve.constant(0.0))

    def test_growth_concentration_orders_step_vs_smooth(self):
        smooth = logistic_curve(rate=0.02, midpoint=200.0)
        steps = StepCurve(
            [(0.0, 0.0)]
            + [(24.0 * (k + 1), 80.0 * (k + 1)) for k in range(4)]
            + [(432.0, 320.0)]
        )
        assert growth_concentration(steps) > growth_concentration(smooth)

    def test_plateau_reached(self):
        assert plateau_reached(logistic_curve(rate=0.2, midpoint=50.0, end=432.0))
        still_growing = logistic_curve(rate=0.01, midpoint=400.0, end=432.0)
        assert not plateau_reached(still_growing)

    def test_expected_plateau_paper_number(self):
        assert expected_plateau(800, 0.40) == pytest.approx(320.0)
        with pytest.raises(ValueError):
            expected_plateau(-1, 0.4)
        with pytest.raises(ValueError):
            expected_plateau(800, 1.4)
