"""Tests for the NGCE-style contact-list file format."""

from __future__ import annotations

import numpy as np
import pytest

from repro.topology import (
    ContactGraph,
    ContactListFormatError,
    contact_network,
    dumps_contact_lists,
    loads_contact_lists,
    read_contact_lists,
    write_contact_lists,
)


def sample_graph() -> ContactGraph:
    return ContactGraph.from_edges(5, [(0, 1), (0, 4), (2, 3)])


def test_round_trip_string():
    graph = sample_graph()
    text = dumps_contact_lists(graph)
    loaded = loads_contact_lists(text)
    assert sorted(loaded.edges()) == sorted(graph.edges())
    assert loaded.num_nodes == graph.num_nodes


def test_round_trip_file(tmp_path):
    graph = contact_network(
        60, 6.0, np.random.default_rng(0), model="random"
    )
    path = tmp_path / "contacts.txt"
    write_contact_lists(graph, path)
    loaded = read_contact_lists(path)
    assert sorted(loaded.edges()) == sorted(graph.edges())


def test_format_shape():
    text = dumps_contact_lists(sample_graph())
    lines = text.strip().splitlines()
    assert lines[0] == "# contact-list v1 n=5"
    assert lines[1] == "0: 1, 4"
    assert lines[3] == "2: 3"


def test_missing_header_rejected():
    with pytest.raises(ContactListFormatError):
        loads_contact_lists("0: 1\n1: 0\n")


def test_bad_population_rejected():
    with pytest.raises(ContactListFormatError):
        loads_contact_lists("# contact-list v1 n=abc\n")


def test_non_reciprocal_rejected():
    text = "# contact-list v1 n=2\n0: 1\n1:\n"
    with pytest.raises(ContactListFormatError, match="reciprocal"):
        loads_contact_lists(text)


def test_self_contact_rejected():
    text = "# contact-list v1 n=2\n0: 0\n1:\n"
    with pytest.raises(ContactListFormatError):
        loads_contact_lists(text)


def test_out_of_range_contact_rejected():
    text = "# contact-list v1 n=2\n0: 5\n1:\n"
    with pytest.raises(ContactListFormatError):
        loads_contact_lists(text)


def test_duplicate_phone_entry_rejected():
    text = "# contact-list v1 n=2\n0: 1\n0: 1\n1: 0\n"
    with pytest.raises(ContactListFormatError):
        loads_contact_lists(text)


def test_bad_contact_token_rejected():
    text = "# contact-list v1 n=2\n0: x\n1:\n"
    with pytest.raises(ContactListFormatError):
        loads_contact_lists(text)


def test_missing_colon_rejected():
    text = "# contact-list v1 n=2\n0 1\n"
    with pytest.raises(ContactListFormatError):
        loads_contact_lists(text)


def test_comments_and_blanks_ignored():
    text = "# contact-list v1 n=2\n\n# comment\n0: 1\n1: 0\n"
    graph = loads_contact_lists(text)
    assert graph.has_edge(0, 1)


def test_empty_contact_lists_allowed():
    text = "# contact-list v1 n=3\n0:\n1:\n2:\n"
    graph = loads_contact_lists(text)
    assert graph.num_edges == 0
