"""Small-N statistical equivalence: xl engine vs core DES vs mean field.

The headline correctness deliverable of the xl engine: at the paper's
population (N=1000) the array engine's infection dynamics must be
statistically indistinguishable from the event-scheduled reference under
the PR-2 gates, and must land on the analytic plateau
``1 + 800 x P(ever accept) ~ 320``.

These run full fig1-scale campaigns, so they carry the ``validation``
marker (deselected from tier-1; run with ``-m validation``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.meanfield import (
    expected_mean_field_plateau,
    mean_field_for_scenario,
)
from repro.core.scenarios import baseline_scenario
from repro.core.simulation import run_scenario
from repro.validation.differential import run_campaign
from repro.validation.gates import (
    mean_equivalence_gate,
    rank_gate,
    welch_gate,
)
from repro.validation.scenarios import VALIDATION_SEED, matched_scenario

pytestmark = pytest.mark.validation

REPLICATIONS = 10


def _finals(config, engine, reps=REPLICATIONS, seed=VALIDATION_SEED):
    stamped = config.with_engine(engine)
    return [
        float(run_scenario(stamped, seed=seed, replication=rep).total_infected)
        for rep in range(reps)
    ]


@pytest.mark.parametrize("virus", [1, 2, 3, 4])
def test_fig1_small_n_equivalence_gates(virus):
    """Full paper virus at N=1000: xl passes the PR-2 gates against core.

    Unlike the matched campaign (which pins one graph), each replication
    here samples its own topology from the same stream — the engines see
    identical population-level draws, so this also covers the scalable
    CSR generator's statistical agreement with the object generator.
    """
    horizon = {1: 168.0, 2: 48.0, 3: 24.0, 4: 240.0}[virus]
    config = baseline_scenario(virus, duration=horizon)
    core = _finals(config, "core")
    xl = _finals(config, "xl")
    gates = [
        mean_equivalence_gate(
            core, xl, absolute_margin=3.0, name=f"v{virus} mean"
        ),
        welch_gate(core, xl, alpha=0.01, name=f"v{virus} welch"),
        rank_gate(core, xl, alpha=0.01, name=f"v{virus} rank"),
    ]
    failed = [g.format() for g in gates if not g.passed]
    assert not failed, f"xl-vs-core gates failed for virus {virus}: {failed}"


def test_fig1_xl_plateau_matches_mean_field():
    """Virus 1 at its full 432 h horizon plateaus at ~320 infections."""
    config = baseline_scenario(1)
    plateau = expected_mean_field_plateau(mean_field_for_scenario(config))
    assert plateau == pytest.approx(320.0, abs=2.0)
    xl = _finals(config, "xl")
    mean = float(np.mean(xl))
    # ±25% band, matching the campaign's plateau tolerance.
    assert abs(mean - plateau) / plateau < 0.25


def test_matched_campaign_passes_with_xl_engine():
    """The pinned-graph matched trio (core/SAN/xl) passes every gate."""
    result = run_campaign(
        scenarios=[matched_scenario(1), matched_scenario(3)],
    )
    assert result.passed, result.format_report()
    for verdict in result.verdicts:
        assert len(verdict.xl_finals) == verdict.scenario.replications
        xl_gates = [g for g in verdict.gates if g.name.startswith("xl-vs")]
        assert xl_gates, "campaign must gate the xl engine directly"
