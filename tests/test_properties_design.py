"""Property tests for the experiment-design algebra (``repro.design``).

Three families of invariants, driven by Hypothesis over arbitrary small
factor sets:

- **Crossing**: the size of a full cross is the product of its factor
  level counts, order is left-major (leftmost factor varies slowest),
  and every point carries every factor exactly once.
- **Dedup**: compiling a design never *drops* a distinct configuration
  — every distinct (scenario, seed, replication) cache key in the
  requested job list survives into the deduplicated list — and dedup is
  idempotent (re-compiling the compiled jobs collapses nothing new).
- **Latin-square subsampling**: with a fixed seed the subsample is
  deterministic, covers every level of every factor at least once, and
  is a strict subset of the full cross.
"""

from __future__ import annotations

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st

from repro.core.cache import result_key
from repro.core.parameters import BlacklistConfig, GatewayScanConfig
from repro.design.compile import ExperimentDesign, compile_design
from repro.design.model import Factor, Level, cross, latin_square

# -- strategies --------------------------------------------------------------

VIRUS_FACTORS = st.lists(
    st.sampled_from((1, 2, 3, 4)), min_size=1, max_size=4, unique=True
).map(lambda numbers: Factor.of("virus", numbers, fmt="virus{}"))

RESPONSE_LEVELS = st.lists(
    st.sampled_from((10, 20, 30, 40, 50, 60)), min_size=1, max_size=5, unique=True
).map(
    lambda thresholds: Factor(
        "response",
        (Level("baseline", ()),)
        + tuple(
            Level(f"th{t}", (BlacklistConfig(threshold=t),)) for t in thresholds
        ),
    )
)

DURATION_FACTORS = st.lists(
    st.sampled_from((6.0, 12.0, 24.0, 48.0)), min_size=1, max_size=3, unique=True
).map(lambda hours: Factor.of("duration", hours, fmt="{:g}h"))

AF_FACTORS = st.lists(
    st.sampled_from((0.1, 0.2, 0.4)), min_size=1, max_size=3, unique=True
).map(lambda values: Factor.of("af", values, fmt="af{:g}"))

#: 2–4 disjoint factors, always including virus (the required factor).
FACTOR_SETS = st.tuples(
    VIRUS_FACTORS,
    RESPONSE_LEVELS,
    st.one_of(st.none(), DURATION_FACTORS),
    st.one_of(st.none(), AF_FACTORS),
).map(lambda parts: tuple(f for f in parts if f is not None))


def design_of(factors) -> ExperimentDesign:
    return ExperimentDesign(
        experiment_id="prop",
        title="property design",
        paper_ref="(test)",
        description="",
        design=cross(*factors),
        label=lambda point: "/".join(
            point[factor.name].label for factor in factors
        ),
    )


# -- crossing ----------------------------------------------------------------


@given(factors=FACTOR_SETS)
@settings(max_examples=40, deadline=None)
def test_cross_size_is_product_of_level_counts(factors):
    design = cross(*factors)
    expected = 1
    for factor in factors:
        expected *= factor.size
    assert design.size == expected
    assert len(design.points()) == expected


@given(factors=FACTOR_SETS)
@settings(max_examples=40, deadline=None)
def test_cross_points_carry_every_factor_and_are_unique(factors):
    design = cross(*factors)
    names = set(design.factor_names)
    seen = set()
    for point in design.points():
        assert set(point) == names
        key = tuple(point[name].label for name in design.factor_names)
        assert key not in seen
        seen.add(key)


@given(factors=FACTOR_SETS)
@settings(max_examples=40, deadline=None)
def test_cross_order_is_left_major(factors):
    design = cross(*factors)
    points = design.points()
    first = factors[0]
    # The leftmost factor varies slowest: its level index over the point
    # sequence is a non-decreasing staircase with equal-width steps.
    index_of = {level.label: i for i, level in enumerate(first.levels)}
    observed = [index_of[p[first.name].label] for p in points]
    block = design.size // first.size
    expected = [i // block for i in range(design.size)]
    assert observed == expected


# -- dedup -------------------------------------------------------------------


@given(factors=FACTOR_SETS, replications=st.integers(1, 3), seed=st.integers(0, 5))
@settings(max_examples=25, deadline=None)
def test_dedup_never_drops_a_distinct_config(factors, replications, seed):
    compiled = compile_design(
        design_of(factors), replications=replications, seed=seed
    )
    requested_keys = set()
    for series, point in zip(
        compiled.spec.series, compiled.design.points()
    ):
        scenario = compiled.spec.scenario_for(series)
        for index in range(replications):
            requested_keys.add(result_key(scenario, seed, index))
    unique_keys = {
        result_key(job.config, job.seed, job.replication) for job in compiled.jobs
    }
    assert unique_keys == requested_keys
    assert compiled.unique_jobs <= compiled.requested_jobs
    assert 0.0 < compiled.dedup_ratio <= 1.0


@given(factors=FACTOR_SETS, replications=st.integers(1, 3))
@settings(max_examples=25, deadline=None)
def test_dedup_is_idempotent(factors, replications):
    design = design_of(factors)
    once = compile_design(design, replications=replications, seed=1)
    twice = compile_design(design, replications=replications, seed=1)
    keys_once = [result_key(j.config, j.seed, j.replication) for j in once.jobs]
    keys_twice = [result_key(j.config, j.seed, j.replication) for j in twice.jobs]
    # Deterministic: same design, same jobs, same order, same slots.
    assert keys_once == keys_twice
    assert once.slots == twice.slots
    # Idempotent: the deduplicated list holds no residual duplicates.
    assert len(set(keys_once)) == len(keys_once)


def test_dedup_collapses_identical_points_and_fans_back_out():
    # Two series that compile to the SAME scenario: a duplicated
    # response level payload under different labels.
    scan = (GatewayScanConfig(6.0),)
    design = ExperimentDesign(
        experiment_id="dup",
        title="duplicate payloads",
        paper_ref="(test)",
        description="",
        design=cross(
            Factor.of("virus", (1,), fmt="virus{}"),
            Factor("response", (Level("a", scan), Level("b", scan))),
        ),
        label=lambda point: point["response"].label,
    )
    compiled = compile_design(design, replications=2, seed=0)
    assert compiled.requested_jobs == 4
    assert compiled.unique_jobs == 2
    assert compiled.dedup_ratio == 0.5
    # Both series fan out of the same two jobs.
    assert compiled.slots["a"] == compiled.slots["b"] == [0, 1]


# -- latin-square subsampling ------------------------------------------------

GRIDS = st.tuples(
    VIRUS_FACTORS, RESPONSE_LEVELS, st.one_of(st.none(), DURATION_FACTORS)
).map(lambda parts: cross(*(f for f in parts if f is not None)))


@given(grid=GRIDS, seed=st.integers(0, 100))
@settings(max_examples=40, deadline=None)
def test_latin_square_is_deterministic(grid, seed):
    first = latin_square(grid, seed=seed).points()
    second = latin_square(grid, seed=seed).points()
    assert [
        {name: level.label for name, level in p.items()} for p in first
    ] == [{name: level.label for name, level in p.items()} for p in second]


@given(grid=GRIDS, seed=st.integers(0, 100))
@settings(max_examples=40, deadline=None)
def test_latin_square_covers_every_level_of_every_factor(grid, seed):
    sample = latin_square(grid, seed=seed)
    points = sample.points()
    for factor in grid.factors():
        observed = {point[factor.name].label for point in points}
        assert observed == {level.label for level in factor.levels}


@given(grid=GRIDS, seed=st.integers(0, 100))
@settings(max_examples=40, deadline=None)
def test_latin_square_is_a_subset_of_the_full_cross(grid, seed):
    full = {
        tuple(point[name].label for name in grid.factor_names)
        for point in grid.points()
    }
    sample = latin_square(grid, seed=seed).points()
    keys = [
        tuple(point[name].label for name in grid.factor_names)
        for point in sample
    ]
    assert set(keys) <= full
    assert len(set(keys)) == len(keys)  # no duplicate points
    assert 0 < len(keys) <= len(full)


@given(grid=GRIDS, seed=st.integers(0, 20), size=st.integers(1, 12))
@settings(max_examples=25, deadline=None)
def test_latin_square_size_floor_keeps_coverage(grid, seed, size):
    sample = latin_square(grid, seed=seed, size=size)
    points = sample.points()
    # Requested size is honoured up to duplicate-combination collapse,
    # and never below what level coverage requires.
    for factor in grid.factors():
        observed = {point[factor.name].label for point in points}
        assert observed == {level.label for level in factor.levels}
