"""Golden-trace recording, replay, and drift detection."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.core import (
    NetworkParameters,
    ScenarioConfig,
    Targeting,
    UserParameters,
    VirusParameters,
)
from repro.experiments.scheduler import ReplicationScheduler
from repro.validation import cli as validation_cli
from repro.validation.golden import (
    DEFAULT_GOLDEN_DIR,
    GOLDEN_SCHEMA_VERSION,
    canonical_json,
    check_golden,
    checkpoint_times,
    golden_paths,
    infection_digest,
    load_golden,
    record_golden,
    save_golden,
)

REPO_ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture
def tiny_config() -> ScenarioConfig:
    """A sub-second scenario for record/check round trips."""
    return ScenarioConfig(
        name="tiny-golden",
        virus=VirusParameters(
            name="tiny-virus",
            targeting=Targeting.CONTACT_LIST,
            recipients_per_message=1,
            min_send_interval=0.1,
            extra_send_delay_mean=0.1,
        ),
        network=NetworkParameters(population=60, mean_contact_list_size=10.0),
        user=UserParameters(read_delay_mean=0.1),
        duration=12.0,
    )


class TestPrimitives:
    def test_checkpoint_times_cover_horizon(self):
        times = checkpoint_times(48.0, count=8)
        assert len(times) == 8
        assert times[0] == 6.0
        assert times[-1] == 48.0
        with pytest.raises(ValueError):
            checkpoint_times(0.0)
        with pytest.raises(ValueError):
            checkpoint_times(10.0, count=0)

    def test_infection_digest_sensitivity(self):
        base = infection_digest([0.0, 1.25, 3.5])
        assert base == infection_digest([0.0, 1.25, 3.5])
        assert base != infection_digest([0.0, 3.5, 1.25])  # reorder
        assert base != infection_digest([0.0, 1.25])  # truncate
        # sub-rounding jitter is canonicalized away
        assert base == infection_digest([0.0, 1.25, 3.5 + 1e-9])


class TestRecordAndCheck:
    def test_round_trip_no_drift(self, tiny_config, tmp_path):
        document = record_golden(tiny_config, "tiny", seed=11, replications=2)
        path = save_golden(document, tmp_path)
        loaded = load_golden(path)
        assert loaded["golden_schema"] == GOLDEN_SCHEMA_VERSION
        assert check_golden(loaded) == []

    def test_rerecord_is_byte_identical(self, tiny_config, tmp_path):
        first = save_golden(
            record_golden(tiny_config, "tiny", seed=11, replications=2),
            tmp_path / "a",
        )
        second = save_golden(
            record_golden(tiny_config, "tiny", seed=11, replications=2),
            tmp_path / "b",
        )
        assert first.read_bytes() == second.read_bytes()

    def test_different_seed_differs(self, tiny_config):
        one = record_golden(tiny_config, "tiny", seed=11, replications=1)
        two = record_golden(tiny_config, "tiny", seed=12, replications=1)
        assert one["results"] != two["results"]

    def test_tamper_detection(self, tiny_config, tmp_path):
        document = record_golden(tiny_config, "tiny", seed=11, replications=1)
        document["results"][0]["total_infected"] += 1
        drifts = check_golden(document)
        assert len(drifts) == 1
        assert drifts[0].field == "total_infected"
        assert "drifted" in drifts[0].format()

    def test_digest_tamper_detection(self, tiny_config):
        document = record_golden(tiny_config, "tiny", seed=11, replications=1)
        document["results"][0]["infection_digest"] = "0" * 64
        fields = {d.field for d in check_golden(document)}
        assert fields == {"infection_digest"}

    def test_cache_backed_scheduler_refused(self, tiny_config, tmp_path):
        from repro.core.cache import ResultCache

        scheduler = ReplicationScheduler(
            processes=1, cache=ResultCache(tmp_path / "cache")
        )
        with pytest.raises(ValueError, match="cache"):
            record_golden(tiny_config, "tiny", seed=11, scheduler=scheduler)

    def test_cache_backed_scheduler_refused_for_xl(self, tiny_config, tmp_path):
        # The refusal is engine-agnostic: an xl fixture served from the
        # result cache would mask drift in the array engine just the same.
        from repro.core.cache import ResultCache

        xl_config = tiny_config.with_engine("xl")
        scheduler = ReplicationScheduler(
            processes=1, cache=ResultCache(tmp_path / "cache")
        )
        with pytest.raises(ValueError, match="cache"):
            record_golden(xl_config, "tiny-xl", seed=11, scheduler=scheduler)
        with pytest.raises(ValueError, match="cache"):
            check_golden(
                record_golden(xl_config, "tiny-xl", seed=11, replications=1),
                scheduler=scheduler,
            )

    def test_xl_round_trip_no_drift(self, tiny_config, tmp_path):
        document = record_golden(
            tiny_config.with_engine("xl"), "tiny-xl", seed=11, replications=2
        )
        assert document["scenario"]["engine"] == "xl"
        path = save_golden(document, tmp_path)
        assert check_golden(load_golden(path)) == []

    def test_schema_version_enforced(self, tiny_config, tmp_path):
        document = record_golden(tiny_config, "tiny", seed=11, replications=1)
        document["golden_schema"] = 999
        path = tmp_path / "tiny.json"
        path.write_text(canonical_json(document), encoding="utf-8")
        with pytest.raises(ValueError, match="golden_schema"):
            load_golden(path)

    def test_truncated_fixture_names_the_file(self, tiny_config, tmp_path):
        # Regression: a truncated fixture used to surface as a bare
        # json.JSONDecodeError with no hint of which file was damaged.
        document = record_golden(tiny_config, "tiny", seed=11, replications=1)
        path = tmp_path / "tiny.json"
        text = canonical_json(document)
        path.write_text(text[: len(text) // 2], encoding="utf-8")
        with pytest.raises(ValueError) as excinfo:
            load_golden(path)
        message = str(excinfo.value)
        assert "corrupt/truncated golden trace" in message
        assert str(path) in message
        assert not isinstance(excinfo.value, json.JSONDecodeError)

    def test_non_object_fixture_rejected(self, tmp_path):
        path = tmp_path / "weird.json"
        path.write_text("[1, 2, 3]", encoding="utf-8")
        with pytest.raises(ValueError, match="corrupt/truncated golden trace"):
            load_golden(path)


class TestCommittedFixtures:
    """The fixtures under tests/golden/ are live: they must replay cleanly."""

    GOLDEN_DIR = REPO_ROOT / DEFAULT_GOLDEN_DIR

    def test_fixtures_exist_and_are_canonical(self):
        paths = golden_paths(self.GOLDEN_DIR)
        assert len(paths) >= 8, "expected the committed golden fixture set"
        names = {p.stem for p in paths}
        assert {"xl-virus1", "xl-virus3", "xl-virus1-responses"} <= names, (
            "xl-engine fixtures missing; record them with "
            "`python -m repro.validation record --scenarios xl-virus1 "
            "xl-virus3 xl-virus1-responses`"
        )
        for path in paths:
            raw = path.read_text(encoding="utf-8")
            document = json.loads(raw)
            assert raw == canonical_json(document), (
                f"{path.name} is not canonical JSON; regenerate it with "
                "`python -m repro.validation record` (see TESTING.md)"
            )

    def test_fastest_fixture_replays_clean(self):
        # virus3 has the shortest horizon; tier-1 replays just this one.
        document = load_golden(self.GOLDEN_DIR / "virus3.json")
        assert check_golden(document) == []

    def test_fastest_xl_fixture_replays_clean(self):
        # The 6 h virus-3 xl fixture replays in well under a second, so
        # tier-1 also guards the array engine byte-for-byte.
        document = load_golden(self.GOLDEN_DIR / "xl-virus3.json")
        assert document["scenario"]["engine"] == "xl"
        assert check_golden(document) == []

    @pytest.mark.validation
    def test_all_fixtures_replay_clean(self):
        rc = validation_cli.main(
            ["check", "--dir", str(self.GOLDEN_DIR), "--processes", "2"]
        )
        assert rc == 0


class TestCli:
    def test_record_check_and_tamper(self, tmp_path, capsys):
        golden_dir = tmp_path / "golden"
        rc = validation_cli.main(
            [
                "record",
                "--dir",
                str(golden_dir),
                "--scenarios",
                "virus3",
                "--replications",
                "1",
            ]
        )
        assert rc == 0
        paths = golden_paths(golden_dir)
        assert [p.name for p in paths] == ["virus3.json"]

        assert validation_cli.main(["check", "--dir", str(golden_dir)]) == 0

        document = load_golden(paths[0])
        document["results"][0]["total_infected"] += 1
        paths[0].write_text(canonical_json(document), encoding="utf-8")
        rc = validation_cli.main(["check", "--dir", str(golden_dir)])
        captured = capsys.readouterr()
        assert rc == 1
        assert "drifted" in captured.out

    def test_check_empty_dir_is_an_error(self, tmp_path):
        assert validation_cli.main(["check", "--dir", str(tmp_path)]) == 2

    def test_record_rejects_unknown_scenario(self, tmp_path, capsys):
        rc = validation_cli.main(
            ["record", "--dir", str(tmp_path), "--scenarios", "nope"]
        )
        assert rc == 2
        assert "unknown golden scenarios" in capsys.readouterr().err

    def test_top_level_cli_forwards_validate(self, tmp_path):
        from repro.cli import main as repro_main

        rc = repro_main(
            [
                "validate",
                "record",
                "--dir",
                str(tmp_path / "g"),
                "--scenarios",
                "virus3",
                "--replications",
                "1",
            ]
        )
        assert rc == 0
        assert (tmp_path / "g" / "virus3.json").exists()


class TestDeploymentCompatibility:
    """The deployment field must not disturb pre-frontier fixtures.

    The committed golden fixtures were recorded before
    ``ScenarioConfig.deployment`` existed; they embed each scenario's
    canonical document.  Re-serializing the registry scenarios today
    must reproduce those documents byte for byte — the omit-when-unset
    rule is what keeps every legacy cache key and golden trace valid.
    """

    GOLDEN_DIR = REPO_ROOT / DEFAULT_GOLDEN_DIR

    def test_registry_scenarios_match_committed_documents(self):
        from repro.core.serialization import scenario_to_dict
        from repro.validation.scenarios import golden_scenarios

        for name, config in golden_scenarios().items():
            fixture = load_golden(self.GOLDEN_DIR / f"{name}.json")
            assert fixture["scenario"] == scenario_to_dict(config), (
                f"{name}: serialized scenario drifted from its committed "
                "fixture — deployment-free documents must stay byte-identical"
            )

    def test_fixture_documents_have_no_deployment_key(self):
        for path in golden_paths(self.GOLDEN_DIR):
            assert "deployment" not in load_golden(path)["scenario"]

    def test_fixture_scenario_hashes_stable(self):
        from repro.core.serialization import scenario_from_dict
        from repro.obs.manifest import scenario_hash
        from repro.validation.scenarios import golden_scenarios

        for name, config in golden_scenarios().items():
            fixture = load_golden(self.GOLDEN_DIR / f"{name}.json")
            embedded = scenario_from_dict(fixture["scenario"])
            assert scenario_hash(embedded) == scenario_hash(config)
            assert scenario_hash(config.with_deployment(None)) == (
                scenario_hash(config)
            )
