"""Tests for SAN markings."""

from __future__ import annotations

import pytest

from repro.san import Marking


def test_initial_tokens():
    marking = Marking({"a": 2, "b": 0})
    assert marking["a"] == 2
    assert marking.get("b") == 0
    assert len(marking) == 2
    assert "a" in marking
    assert "missing" not in marking


def test_negative_initial_rejected():
    with pytest.raises(ValueError):
        Marking({"a": -1})


def test_set_and_add():
    marking = Marking({"a": 1})
    marking["a"] = 5
    assert marking["a"] == 5
    marking.add("a", 2)
    assert marking["a"] == 7
    marking.remove("a", 3)
    assert marking["a"] == 4


def test_unknown_place_rejected():
    marking = Marking({"a": 0})
    with pytest.raises(KeyError):
        marking["b"]
    with pytest.raises(KeyError):
        marking["b"] = 1


def test_negative_tokens_rejected():
    marking = Marking({"a": 1})
    with pytest.raises(ValueError):
        marking.remove("a", 2)


def test_dirty_tracking():
    marking = Marking({"a": 1, "b": 2})
    assert marking.take_dirty() == set()
    marking["a"] = 3
    marking["b"] = 2  # unchanged value: not dirty
    assert marking.take_dirty() == {"a"}
    assert marking.take_dirty() == set()


def test_as_dict_is_snapshot():
    marking = Marking({"a": 1})
    snapshot = marking.as_dict()
    marking["a"] = 9
    assert snapshot == {"a": 1}


def test_items_iteration():
    marking = Marking({"a": 1, "b": 2})
    assert dict(marking.items()) == {"a": 1, "b": 2}
    assert set(iter(marking)) == {"a", "b"}
