"""Unit tests for the frontier solver, predicate, and manifest record.

The bisection core is property-tested in ``test_frontier_bisect.py``;
here a stub scheduler pins the solver's orchestration contract — probe
configs carry the right :class:`ResponseDeployment`, cache accounting
deltas are correct, the replication-spread confidence bracket widens
around mixed probes — and a small real scheduler run checks the whole
stack end to end, including the validated ``frontier`` manifest section.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.parameters import (
    BlacklistConfig,
    GatewayScanConfig,
    ImmunizationConfig,
    ResponseDeployment,
)
from repro.experiments import ReplicationScheduler
from repro.frontier import (
    AXES,
    AXIS_LATENCY,
    AXIS_ROLLOUT,
    ContainmentPredicate,
    FrontierSolver,
    crosscheck_response_for,
    deployment_for,
    mean_field_frontier,
)
from repro.frontier.crosscheck import MATCHED_BLACKLIST_THRESHOLD
from repro.obs.manifest import build_manifest, validate_manifest
from repro.validation import frontier_matched_scenario


class TestContainmentPredicate:
    def test_threshold_and_verdict(self):
        predicate = ContainmentPredicate(plateau=100.0, fraction=0.5)
        assert predicate.threshold == 50.0
        assert predicate.contained([10.0, 20.0])
        assert predicate.contained([50.0, 50.0])  # boundary counts
        assert not predicate.contained([60.0, 70.0])

    def test_rejects_bad_configuration(self):
        with pytest.raises(ValueError, match="plateau"):
            ContainmentPredicate(plateau=0.0, fraction=0.5)
        for fraction in (0.0, 1.0, -0.2, 1.5):
            with pytest.raises(ValueError, match="fraction"):
                ContainmentPredicate(plateau=100.0, fraction=fraction)

    def test_rejects_empty_finals(self):
        predicate = ContainmentPredicate(plateau=100.0, fraction=0.5)
        with pytest.raises(ValueError, match="at least one"):
            predicate.contained([])

    def test_to_dict_shape(self):
        record = ContainmentPredicate(plateau=320.4, fraction=0.5).to_dict()
        assert record == {
            "plateau": 320.4,
            "fraction": 0.5,
            "threshold": 160.2,
        }


class TestDeploymentFor:
    def test_latency_axis(self):
        deployment = deployment_for(AXIS_LATENCY, 24.0, rollout_rate=0.5)
        assert deployment == ResponseDeployment(
            latency_hours=24.0, rollout_rate=0.5
        )

    def test_rollout_axis_takes_reciprocal(self):
        deployment = deployment_for(AXIS_ROLLOUT, 8.0, latency=6.0)
        assert deployment.latency_hours == 6.0
        assert deployment.rollout_rate == pytest.approx(1.0 / 8.0)

    def test_rollout_axis_rejects_nonpositive_window(self):
        with pytest.raises(ValueError, match="positive window"):
            deployment_for(AXIS_ROLLOUT, 0.0)

    def test_unknown_axis_rejected(self):
        with pytest.raises(ValueError, match="unknown frontier axis"):
            deployment_for("severity", 1.0)
        assert AXES == (AXIS_LATENCY, AXIS_ROLLOUT)


class TestCrosscheckResponse:
    def test_blacklist_is_sharpened(self):
        sharpened = crosscheck_response_for(BlacklistConfig(threshold=10))
        assert sharpened.threshold == MATCHED_BLACKLIST_THRESHOLD

    def test_already_sharp_blacklist_kept(self):
        assert crosscheck_response_for(BlacklistConfig(threshold=2)).threshold == 2

    def test_other_mechanisms_unchanged(self):
        for response in (
            GatewayScanConfig(activation_delay=6.0),
            ImmunizationConfig(development_time=24.0, deployment_window=6.0),
        ):
            assert crosscheck_response_for(response) is response


class _StubStats:
    def __init__(self):
        self.scheduled = 0
        self.executed = 0
        self.cache_hits = 0


class _StubSet:
    def __init__(self, finals):
        self._finals = finals

    def final_infected(self):
        return list(self._finals)


class _StubScheduler:
    """Replays a value -> finals curve; counts scheduler accounting."""

    def __init__(self, curve):
        self.curve = curve
        self.stats = _StubStats()
        self.configs = []

    def replicate(self, config, replications, seed):
        self.configs.append(config)
        value = config.deployment.latency_hours
        self.stats.scheduled += replications
        self.stats.executed += replications
        return _StubSet(self.curve(value))


def _step_curve(value):
    """Monotone containment with a mixed (non-unanimous) middle probe."""
    if value < 4.0:
        return (10.0, 10.0, 10.0)
    if value < 5.0:
        return (40.0, 60.0, 45.0)  # mean 48.3: contained, but split
    return (90.0, 90.0, 90.0)


@pytest.fixture
def tiny_scenario():
    return frontier_matched_scenario(
        1, BlacklistConfig(threshold=3), population=200, horizon_intervals=20.0
    ).config


class TestSolverWithStub:
    def test_probe_configs_and_accounting(self, tiny_scenario):
        scheduler = _StubScheduler(_step_curve)
        solver = FrontierSolver(
            scheduler, replications=3, seed=7, fraction=0.5, tolerance=2.0
        )
        result = solver.solve(
            tiny_scenario, low=0.0, high=8.0, plateau=100.0
        )
        assert result.status == "converged"
        assert result.interval == (4.0, 6.0)
        assert result.critical == 5.0
        # Every probe config carried its deployment and a distinct name.
        for config, probe in zip(scheduler.configs, result.probes):
            assert config.deployment == ResponseDeployment(
                latency_hours=probe.value, rollout_rate=None
            )
            assert config.name.endswith(f"latency{probe.value:.6g}")
        assert result.jobs_scheduled == 3 * len(result.probes)
        assert result.jobs_executed == 3 * len(result.probes)
        assert result.cache_hits == 0

    def test_confidence_bracket_widens_on_split_probe(self, tiny_scenario):
        scheduler = _StubScheduler(_step_curve)
        solver = FrontierSolver(
            scheduler, replications=3, seed=7, fraction=0.5, tolerance=2.0
        )
        result = solver.solve(tiny_scenario, low=0.0, high=8.0, plateau=100.0)
        # The probe at 4.0 is contained on the mean but one replication
        # escaped, so the unanimity bracket must retreat to the last
        # fully contained probe (0.0) below and the first fully escaped
        # probe (6.0) above — never narrower than the bisection bracket.
        assert result.confidence_low == 0.0
        assert result.confidence_high == 6.0
        assert result.contains(result.critical)
        assert not result.contains(7.0)
        assert result.contains(7.0, slack=1.0)

    def test_deterministic(self, tiny_scenario):
        results = []
        for _ in range(2):
            solver = FrontierSolver(
                _StubScheduler(_step_curve), replications=3, seed=7,
                fraction=0.5, tolerance=2.0,
            )
            results.append(
                solver.solve(tiny_scenario, low=0.0, high=8.0, plateau=100.0)
            )
        assert results[0] == results[1]

    def test_manifest_section_validates(self, tiny_scenario):
        solver = FrontierSolver(
            _StubScheduler(_step_curve), replications=3, seed=7,
            fraction=0.5, tolerance=2.0,
        )
        result = solver.solve(tiny_scenario, low=0.0, high=8.0, plateau=100.0)
        document = build_manifest(
            "run",
            "frontier-unit",
            wall_seconds=0.1,
            frontier={"production": result.manifest_section()},
        )
        assert validate_manifest(document) == []

    def test_broken_manifest_section_rejected(self, tiny_scenario):
        solver = FrontierSolver(
            _StubScheduler(_step_curve), replications=3, seed=7,
            fraction=0.5, tolerance=2.0,
        )
        section = solver.solve(
            tiny_scenario, low=0.0, high=8.0, plateau=100.0
        ).manifest_section()
        del section["predicate"]
        section["cache"]["executed"] = -1
        document = build_manifest(
            "run", "frontier-unit", wall_seconds=0.1,
            frontier={"production": section},
        )
        problems = validate_manifest(document)
        assert any("predicate" in p for p in problems)
        assert any("cache.executed" in p for p in problems)

    def test_solver_validation(self, tiny_scenario):
        with pytest.raises(ValueError, match="replications"):
            FrontierSolver(_StubScheduler(_step_curve), replications=0)
        solver = FrontierSolver(_StubScheduler(_step_curve))
        with pytest.raises(ValueError, match="unknown frontier axis"):
            solver.solve(tiny_scenario, low=0.0, high=8.0, axis="bogus")


class TestSolverEndToEnd:
    def test_small_real_frontier(self, tiny_scenario):
        with ReplicationScheduler(processes=1) as scheduler:
            solver = FrontierSolver(
                scheduler, replications=2, seed=3, fraction=0.5, tolerance=8.0
            )
            result = solver.solve(tiny_scenario, low=0.0, high=16.0)
        assert result.status in ("converged", "all_contained", "all_escaped")
        assert result.probes  # every probe recorded
        assert result.jobs_scheduled == 2 * len(result.probes)
        assert result.replications == 2
        document = build_manifest(
            "run",
            "frontier-e2e",
            wall_seconds=0.5,
            frontier={"production": result.manifest_section()},
        )
        assert validate_manifest(document) == []

    def test_real_frontier_deterministic(self, tiny_scenario):
        runs = []
        for _ in range(2):
            with ReplicationScheduler(processes=1) as scheduler:
                solver = FrontierSolver(
                    scheduler, replications=2, seed=3,
                    fraction=0.5, tolerance=8.0,
                )
                runs.append(
                    solver.solve(tiny_scenario, low=0.0, high=16.0)
                )
        assert runs[0].probes == runs[1].probes
        assert runs[0].interval == runs[1].interval


class TestAnalyticFrontier:
    def test_mean_field_frontier_converges(self):
        scenario = frontier_matched_scenario(
            1, BlacklistConfig(threshold=3)
        ).config
        analytic = mean_field_frontier(
            scenario, low=0.0, high=72.0, tolerance=1.0, dt=0.1
        )
        assert analytic.status == "converged"
        assert 0.0 < analytic.critical < 72.0
        record = analytic.to_dict()
        assert record["axis"] == "latency"
        assert record["interval"][0] <= record["critical"] <= record["interval"][1]

    def test_stricter_fraction_means_earlier_deadline(self):
        scenario = frontier_matched_scenario(
            1, BlacklistConfig(threshold=3)
        ).config
        strict = mean_field_frontier(
            scenario, low=0.0, high=72.0, fraction=0.25, tolerance=1.0, dt=0.1
        )
        lax = mean_field_frontier(
            scenario, low=0.0, high=72.0, fraction=0.75, tolerance=1.0, dt=0.1
        )
        assert strict.critical < lax.critical
