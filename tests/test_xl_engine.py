"""Tier-1 tests for the array-backed xl engine.

Fast correctness checks: engine-axis plumbing (config, serialization,
cache identity, scheduler), dispatch, determinism, unsupported-feature
guards, and small-N behavioural invariants.  The statistical equivalence
campaign against the core DES lives in ``test_xl_equivalence.py``
(validation marker); the 100k-population smoke in ``test_xl_scale.py``
(slow marker).
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.core.cache import result_key
from repro.core.parameters import (
    ENGINES,
    GatewayScanConfig,
    ImmunizationConfig,
    MonitoringConfig,
    NetworkParameters,
    ScenarioConfig,
    UserParameters,
    VirusParameters,
    Targeting,
)
from repro.core.scenarios import baseline_scenario
from repro.core.serialization import scenario_from_dict, scenario_to_dict
from repro.core.simulation import run_scenario
from repro.des.trace import Tracer
from repro.experiments.spec import ExperimentSpec, SeriesSpec
from repro.experiments.scheduler import flatten_experiment
from repro.validation.golden import (
    checkpoint_times,
    replication_signature,
)
from repro.xl import (
    UnsupportedFeatureError,
    XL_PRESETS,
    round_width,
    run_scenario_xl,
    xl_scenario,
)


def _small_scenario(virus: int = 1, **overrides) -> ScenarioConfig:
    base = baseline_scenario(
        virus, network=NetworkParameters(population=120), duration=48.0
    )
    return replace(base, engine="xl", **overrides)


# -- engine axis plumbing ---------------------------------------------------


def test_engine_axis_validates():
    assert ENGINES == {"core", "xl"}
    config = baseline_scenario(1)
    assert config.engine == "core"
    assert config.with_engine("xl").engine == "xl"
    with pytest.raises(ValueError):
        replace(config, engine="warp")


def test_engine_round_trips_through_serialization():
    config = _small_scenario()
    document = scenario_to_dict(config)
    assert document["engine"] == "xl"
    assert scenario_from_dict(document).engine == "xl"
    # Core documents stay byte-stable: no engine key at all.
    assert "engine" not in scenario_to_dict(config.with_engine("core"))


def test_engine_is_part_of_cache_identity():
    config = baseline_scenario(1)
    assert result_key(config, 0, 0) != result_key(config.with_engine("xl"), 0, 0)


def test_experiment_spec_stamps_engine():
    scenario = baseline_scenario(1, network=NetworkParameters(population=120))
    spec = ExperimentSpec(
        experiment_id="t",
        title="t",
        paper_ref="t",
        description="t",
        series=(SeriesSpec(label="a", scenario=scenario),),
        engine="xl",
    )
    jobs = flatten_experiment(spec, replications=2)
    assert all(job.config.engine == "xl" for job in jobs)
    with pytest.raises(ValueError):
        replace(spec, engine="warp")


def test_xl_presets_cover_paper_to_million():
    assert set(XL_PRESETS) == {"paper", "xl-10k", "xl-100k", "xl-1m"}
    config = xl_scenario(1, "xl-10k")
    assert config.engine == "xl"
    assert config.network.population == 10_000
    with pytest.raises(ValueError):
        xl_scenario(1, "xl-42")


# -- dispatch ----------------------------------------------------------------


def test_run_scenario_dispatches_to_xl():
    config = _small_scenario()
    result = run_scenario(config, seed=3)
    assert "xl_rounds" in result.counters
    assert result.config.engine == "xl"


def test_xl_rejects_tracer():
    with pytest.raises(ValueError, match="tracing"):
        run_scenario(_small_scenario(), seed=0, tracer=Tracer())


def test_xl_rejects_gateway_capacity():
    config = _small_scenario()
    with pytest.raises(UnsupportedFeatureError, match="capacity"):
        run_scenario_xl(
            replace(
                config,
                network=replace(config.network, gateway_capacity_per_hour=100.0),
            )
        )


def test_xl_accepts_bluetooth():
    # Bluetooth was an UnsupportedFeatureError until the hybrid channel
    # landed; dedicated coverage lives in test_xl_bluetooth.py.
    config = _small_scenario()
    result = run_scenario_xl(
        replace(config, virus=replace(config.virus, bluetooth_rate=1.0)), seed=0
    )
    assert result.counters["bluetooth_encounters"] > 0


# -- behaviour ----------------------------------------------------------------


def test_xl_is_deterministic_per_seed_and_replication():
    config = _small_scenario()
    times = checkpoint_times(config.duration)
    first = replication_signature(run_scenario(config, seed=11), times)
    again = replication_signature(run_scenario(config, seed=11), times)
    other = replication_signature(run_scenario(config, seed=12), times)
    assert first == again
    assert first != other


def test_xl_matches_core_susceptibles_and_patient_zero():
    """Population-level draws share the core streams: same susceptible set,
    same patient zero for a given (seed, replication)."""
    config = baseline_scenario(1, network=NetworkParameters(population=150))
    for seed in (0, 7):
        core = run_scenario(config, seed=seed)
        xl = run_scenario(config.with_engine("xl"), seed=seed)
        assert core.patient_zero == xl.patient_zero
        assert core.susceptible_count == xl.susceptible_count


def test_xl_infection_curve_is_monotone_and_bounded():
    result = run_scenario(_small_scenario(), seed=5)
    times = sorted(result.infection_times)
    assert times == list(result.infection_times)
    assert times[0] == 0.0  # patient zero
    assert result.total_infected <= result.susceptible_count
    curve = result.curve()
    sampled = [curve.value_at(t) for t in np.linspace(0.0, result.final_time, 50)]
    assert all(b >= a for a, b in zip(sampled, sampled[1:]))


def test_xl_counters_are_consistent():
    result = run_scenario(_small_scenario(), seed=9)
    counters = result.counters
    assert counters["messages_sent"] >= counters["gateway_messages_processed"] >= 0
    assert (
        counters["gateway_messages_delivered"]
        <= counters["gateway_messages_processed"]
    )
    assert counters["attachments_accepted"] >= result.total_infected - 1
    assert counters["deliveries"] >= counters["attachments_accepted"]
    assert counters["xl_rounds"] >= 1


def test_xl_random_dialing_skips_topology():
    """Virus 3 never consults contact lists; invalid dials are counted."""
    config = replace(
        baseline_scenario(3, network=NetworkParameters(population=200)),
        duration=12.0,
        engine="xl",
    )
    result = run_scenario(config, seed=4)
    assert result.counters["invalid_dials"] > 0
    assert result.total_infected > 1


def test_xl_immunization_quarantines_and_immunizes():
    config = _small_scenario(
        responses=(ImmunizationConfig(development_time=6.0, deployment_window=3.0),)
    )
    result = run_scenario(config, seed=2)
    stats = result.response_stats["immunization"]
    assert stats["patch_ready_time"] > 0
    assert stats["phones_immunized"] + stats["phones_quarantined"] > 0
    # Patch halts the epidemic well short of the no-response plateau.
    unresponded = run_scenario(_small_scenario(), seed=2)
    assert result.total_infected <= unresponded.total_infected


def test_xl_monitoring_throttles_fast_senders():
    fast = replace(
        baseline_scenario(3, network=NetworkParameters(population=200)),
        duration=8.0,
        engine="xl",
    )
    config = replace(fast, responses=(MonitoringConfig(),))
    result = run_scenario(config, seed=6)
    assert result.response_stats["monitoring"]["phones_flagged"] > 0


def test_xl_gateway_scan_blocks_after_activation():
    config = _small_scenario(
        responses=(GatewayScanConfig(activation_delay=2.0),)
    )
    result = run_scenario(config, seed=8)
    stats = result.response_stats["gateway_scan"]
    assert stats["blocked_messages"] > 0
    assert result.counters["gateway_messages_blocked"] > 0


def test_xl_duplicate_mechanism_rejected():
    config = _small_scenario(
        responses=(MonitoringConfig(), MonitoringConfig(forced_wait=0.5))
    )
    with pytest.raises(UnsupportedFeatureError, match="at most one"):
        run_scenario_xl(config)


def test_xl_pinned_graph_population_mismatch_rejected():
    from repro.topology.graph import ContactGraph

    graph = ContactGraph(10)
    with pytest.raises(ValueError, match="population"):
        run_scenario_xl(_small_scenario(), graph=graph)


def test_round_width_halves_min_interval_and_is_bounded():
    config = _small_scenario()
    assert round_width(config) == pytest.approx(
        config.virus.min_send_interval / 2.0
    )
    instant = replace(
        config,
        virus=replace(
            config.virus, min_send_interval=0.0, extra_send_delay_mean=0.0
        ),
    )
    assert round_width(instant) > 0.0
    tiny = replace(config, duration=1e-3)
    assert round_width(tiny) <= tiny.duration
