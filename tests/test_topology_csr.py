"""Tests for the CSR adjacency and the scalable power-law generator.

The xl engine's topology path must preserve the paper's network: a
power-law contact graph with mean contact-list size ~80 at N=1000 and a
degree distribution whose log-log tail slope matches the configured
exponent.  Structural invariants (symmetry, sorted rows, no self-loops,
no isolated nodes) are checked across sizes; the exponent and the mean
are checked statistically.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.topology import CSRAdjacency, csr_powerlaw
from repro.topology.generators import contact_network
from repro.topology.graph import ContactGraph


def _assert_structural_invariants(adjacency: CSRAdjacency) -> None:
    n = adjacency.num_nodes
    degrees = adjacency.degrees()
    assert len(adjacency.indptr) == n + 1
    assert adjacency.indptr[0] == 0
    assert int(adjacency.indptr[-1]) == len(adjacency.indices)
    assert np.all(degrees > 0), "isolated nodes must be repaired"
    src = np.repeat(np.arange(n, dtype=np.int64), degrees)
    dst = adjacency.indices.astype(np.int64)
    assert np.all(src != dst), "self-loops are forbidden"
    # Rows strictly increasing => sorted and duplicate-free.
    row_starts = adjacency.indptr[:-1]
    interior = np.ones(len(dst), dtype=bool)
    interior[row_starts] = False
    assert np.all(np.diff(dst)[interior[1:]] > 0)
    # Symmetry: the reversed edge set is the same set.
    forward = src * n + dst
    backward = dst * n + src
    assert np.array_equal(np.sort(forward), np.sort(backward))


@pytest.mark.parametrize("num_nodes", [100, 1000, 10_000])
def test_csr_powerlaw_structure(num_nodes):
    rng = np.random.default_rng(2007)
    adjacency = csr_powerlaw(num_nodes, 16.0, 1.8, rng)
    assert adjacency.num_nodes == num_nodes
    _assert_structural_invariants(adjacency)


@pytest.mark.slow
def test_csr_powerlaw_structure_100k():
    rng = np.random.default_rng(2007)
    adjacency = csr_powerlaw(100_000, 80.0, 1.8, rng)
    assert adjacency.num_nodes == 100_000
    _assert_structural_invariants(adjacency)
    assert adjacency.mean_degree() > 8.0


def test_mean_contact_list_size_is_eighty_at_paper_population():
    """The paper's network: N=1000, mean contact-list size ~80."""
    means = [
        csr_powerlaw(1000, 80.0, 1.8, np.random.default_rng(seed)).mean_degree()
        for seed in range(5)
    ]
    # Same calibration (and tolerance) the object generator is held to.
    assert np.mean(means) == pytest.approx(80.0, rel=0.15)


def test_powerlaw_exponent_via_loglog_regression():
    """Log-log degree-histogram slope recovers the configured exponent."""
    exponent = 1.8
    rng = np.random.default_rng(2007)
    adjacency = csr_powerlaw(20_000, 40.0, exponent, rng)
    degrees = adjacency.degrees()
    values, counts = np.unique(degrees, return_counts=True)
    # Regress over the well-populated head of the distribution; the
    # sparse tail (few samples per degree) only adds noise.
    mask = counts >= 5
    slope, _ = np.polyfit(np.log(values[mask]), np.log(counts[mask]), 1)
    assert -slope == pytest.approx(exponent, abs=0.35)


def test_csr_matches_object_generator_distribution():
    """CSR and object generators share calibration: similar mean degree."""
    rng_a = np.random.default_rng(1)
    rng_b = np.random.default_rng(2)
    csr = csr_powerlaw(1000, 80.0, 1.8, rng_a)
    obj = contact_network(1000, 80.0, rng_b, model="powerlaw", exponent=1.8)
    obj_mean = 2 * obj.num_edges / obj.num_nodes
    assert csr.mean_degree() == pytest.approx(obj_mean, rel=0.1)


def test_from_edges_dedupes_and_sorts():
    adjacency = CSRAdjacency.from_edges(
        5,
        np.array([0, 1, 1, 3, 0, 2]),
        np.array([1, 0, 2, 3, 1, 4]),  # dup 0-1 (twice), self-loop 3-3
    )
    assert adjacency.num_edges == 3
    assert list(adjacency.neighbors(0)) == [1]
    assert list(adjacency.neighbors(1)) == [0, 2]
    assert list(adjacency.neighbors(2)) == [1, 4]
    assert list(adjacency.neighbors(3)) == []
    assert list(adjacency.neighbors(4)) == [2]


def test_contact_graph_round_trip():
    graph = ContactGraph(6)
    for u, v in [(0, 1), (0, 2), (1, 2), (3, 4), (4, 5)]:
        graph.add_edge(u, v)
    adjacency = CSRAdjacency.from_contact_graph(graph)
    assert adjacency.num_edges == 5
    assert list(adjacency.neighbors(0)) == [1, 2]
    back = adjacency.to_contact_graph()
    assert back.neighbor_lists() == graph.neighbor_lists()


def test_validation_errors():
    with pytest.raises(ValueError):
        CSRAdjacency(
            indptr=np.array([0, 2]), indices=np.array([1], dtype=np.int32)
        )
    with pytest.raises(ValueError):
        CSRAdjacency.from_edges(3, np.array([0, 1]), np.array([1]))


def test_tiny_populations():
    empty = csr_powerlaw(0, 8.0, 2.0, np.random.default_rng(0))
    assert empty.num_nodes == 0 and empty.num_edges == 0
    single = csr_powerlaw(1, 8.0, 2.0, np.random.default_rng(0))
    assert single.num_nodes == 1 and single.num_edges == 0
