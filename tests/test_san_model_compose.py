"""Tests for SAN model structure and Rep/Join composition."""

from __future__ import annotations

import numpy as np
import pytest

from repro.des.random import Deterministic
from repro.san import (
    Case,
    InputGate,
    OutputGate,
    Place,
    SANModel,
    SANStructureError,
    TimedActivity,
    join,
    replicate,
)


def simple_counter_model(shared_name: str = "total") -> SANModel:
    """One local place, a timed activity moving tokens into a shared total."""
    model = SANModel("counter")
    model.place("budget", 3)
    model.place(shared_name, 0)
    model.add_activity(
        TimedActivity(
            "tick",
            Deterministic(1.0),
            input_arcs=["budget"],
            output_arcs=[shared_name],
        )
    )
    return model


class TestSANModel:
    def test_duplicate_place_rejected(self):
        model = SANModel()
        model.place("a")
        with pytest.raises(SANStructureError):
            model.place("a")

    def test_duplicate_activity_rejected(self):
        model = SANModel()
        model.place("a")
        model.add_activity(TimedActivity("t", 1.0, input_arcs=["a"]))
        with pytest.raises(SANStructureError):
            model.add_activity(TimedActivity("t", 1.0, input_arcs=["a"]))

    def test_undeclared_place_rejected(self):
        model = SANModel()
        with pytest.raises(SANStructureError):
            model.add_activity(TimedActivity("t", 1.0, input_arcs=["ghost"]))

    def test_initial_marking(self):
        model = SANModel()
        model.place("a", 2)
        model.place("b")
        marking = model.initial_marking()
        assert marking["a"] == 2
        assert marking["b"] == 0

    def test_lookups(self):
        model = SANModel()
        model.place("a", 1)
        model.add_activity(TimedActivity("t", 1.0, input_arcs=["a"]))
        assert model.get_place("a").initial_tokens == 1
        assert model.get_activity("t").name == "t"
        with pytest.raises(SANStructureError):
            model.get_place("zz")
        with pytest.raises(SANStructureError):
            model.get_activity("zz")

    def test_renamed_prefixes_non_shared(self):
        model = simple_counter_model()
        renamed = model.renamed("r0", shared=["total"])
        place_names = {p.name for p in renamed.places}
        assert place_names == {"r0.budget", "total"}
        assert renamed.activities[0].name == "r0.tick"

    def test_renamed_unknown_shared_rejected(self):
        model = simple_counter_model()
        with pytest.raises(SANStructureError):
            model.renamed("r0", shared=["ghost"])


class TestComposition:
    def test_join_fuses_shared_places(self):
        composed = join(
            [("x", simple_counter_model()), ("y", simple_counter_model())],
            shared=["total"],
        )
        names = {p.name for p in composed.places}
        assert names == {"x.budget", "y.budget", "total"}
        assert len(composed.activities) == 2

    def test_join_conflicting_shared_initials_rejected(self):
        a = SANModel("a")
        a.place("shared", 1)
        b = SANModel("b")
        b.place("shared", 2)
        with pytest.raises(SANStructureError):
            join([("x", a), ("y", b)], shared=["shared"])

    def test_join_missing_shared_place_rejected(self):
        with pytest.raises(SANStructureError):
            join([("x", simple_counter_model())], shared=["ghost"])

    def test_join_duplicate_instances_rejected(self):
        model = simple_counter_model()
        with pytest.raises(SANStructureError):
            join([("x", model), ("x", model)], shared=["total"])

    def test_replicate_counts(self):
        composed = replicate(simple_counter_model(), 5, shared=["total"])
        budgets = [p for p in composed.places if p.name.endswith("budget")]
        assert len(budgets) == 5
        assert len(composed.activities) == 5

    def test_replicate_invalid_count(self):
        with pytest.raises(SANStructureError):
            replicate(simple_counter_model(), 0, shared=["total"])

    def test_composed_model_executes_with_gate_translation(self):
        """Gates written against local names must see the composed marking."""
        from repro.san import SANSimulator

        model = SANModel("gated")
        model.place("budget", 2)
        model.place("total", 0)
        model.add_activity(
            TimedActivity(
                "tick",
                Deterministic(1.0),
                input_arcs=["budget"],
                input_gates=[
                    InputGate(
                        "limit", ("total",), predicate=lambda m: m["total"] < 10
                    )
                ],
                output_gates=[
                    OutputGate(
                        "bump", ("total",), function=lambda m: m.add("total", 1)
                    )
                ],
            )
        )
        composed = replicate(model, 3, shared=["total"])
        result = SANSimulator(composed, np.random.default_rng(0)).run(until=10.0)
        # 3 replicas × 2 budget tokens each, all moved into the shared total.
        assert result.final_marking["total"] == 6

    def test_composed_case_probability_translation(self):
        """Marking-dependent case probabilities survive renaming."""
        from repro.san import InstantaneousActivity, SANSimulator

        model = SANModel("prob")
        model.place("fuel", 1)
        model.place("mode", 1)  # local place read by the case probability
        model.place("hit", 0)
        model.place("miss", 0)
        model.add_activity(
            InstantaneousActivity(
                "fire",
                input_arcs=["fuel"],
                cases=[
                    Case(
                        probability=lambda m: 1.0 if m["mode"] == 1 else 0.0,
                        output_arcs=["hit"],
                    ),
                    Case(
                        probability=lambda m: 0.0 if m["mode"] == 1 else 1.0,
                        output_arcs=["miss"],
                    ),
                ],
            )
        )
        composed = replicate(model, 4, shared=[])
        result = SANSimulator(composed, np.random.default_rng(0)).run(until=1.0)
        hits = sum(
            result.final_marking[p.name]
            for p in composed.places
            if p.name.endswith(".hit")
        )
        assert hits == 4
