"""Tests for run metrics recording."""

from __future__ import annotations

import pytest

from repro.core import ModelMetrics


def test_infection_recording():
    metrics = ModelMetrics()
    assert metrics.record_infection(1.0) == 1
    assert metrics.record_infection(2.5) == 2
    assert metrics.total_infected == 2
    assert metrics.infection_times == [1.0, 2.5]


def test_infections_must_be_time_ordered():
    metrics = ModelMetrics()
    metrics.record_infection(5.0)
    with pytest.raises(ValueError):
        metrics.record_infection(4.0)


def test_infection_steps_anchor_zero():
    metrics = ModelMetrics()
    metrics.record_infection(2.0)
    metrics.record_infection(3.0)
    assert metrics.infection_steps() == [(0.0, 0), (2.0, 1), (3.0, 2)]


def test_infections_by_time():
    metrics = ModelMetrics()
    for t in (1.0, 2.0, 4.0):
        metrics.record_infection(t)
    assert metrics.infections_by(0.5) == 0
    assert metrics.infections_by(2.0) == 2
    assert metrics.infections_by(10.0) == 3


def test_counters():
    metrics = ModelMetrics()
    metrics.count("sent")
    metrics.count("sent", 4)
    assert metrics.get("sent") == 5
    assert metrics.get("missing") == 0
    assert metrics.counters() == {"sent": 5}


def test_infection_times_returns_copy():
    metrics = ModelMetrics()
    metrics.record_infection(1.0)
    times = metrics.infection_times
    times.append(99.0)
    assert metrics.infection_times == [1.0]
