"""Tests for reward accumulation semantics."""

from __future__ import annotations

import pytest

from repro.san import ImpulseReward, Marking, RateReward, RewardAccumulator, place_count


def test_start_required_before_observe():
    accumulator = RewardAccumulator([RateReward("x", place_count("a"))])
    with pytest.raises(RuntimeError):
        accumulator.observe(1.0, Marking({"a": 0}))


def test_instant_and_interval_values():
    marking = Marking({"a": 1})
    accumulator = RewardAccumulator([RateReward("a", place_count("a"))])
    accumulator.start(marking)
    marking["a"] = 3
    accumulator.observe(2.0, marking)  # value 1 over [0,2)
    marking["a"] = 0
    accumulator.observe(5.0, marking)  # value 3 over [2,5)
    accumulator.finish(10.0, marking)  # value 0 over [5,10]
    assert accumulator.instant_value("a") == 0.0
    assert accumulator.interval_value("a") == pytest.approx(2 * 1 + 3 * 3)
    assert accumulator.time_averaged_value("a") == pytest.approx(11.0 / 10.0)


def test_trajectory_records_changes_only():
    marking = Marking({"a": 0})
    accumulator = RewardAccumulator([RateReward("a", place_count("a"))])
    accumulator.start(marking)
    accumulator.observe(1.0, marking)  # no change: no new point
    marking["a"] = 2
    accumulator.observe(2.0, marking)
    accumulator.observe(3.0, marking)  # no change
    assert accumulator.trajectory("a") == [(0.0, 0.0), (2.0, 2.0)]


def test_trajectories_can_be_disabled():
    accumulator = RewardAccumulator(
        [RateReward("a", place_count("a"))], record_trajectories=False
    )
    accumulator.start(Marking({"a": 0}))
    with pytest.raises(RuntimeError):
        accumulator.trajectory("a")


def test_impulse_accumulation():
    accumulator = RewardAccumulator(
        impulse_rewards=[
            ImpulseReward("sends", ("send", "resend"), value=1.0),
            ImpulseReward("weighted", ("send",), value=0.5),
        ]
    )
    accumulator.start(Marking({}))
    accumulator.impulse("send")
    accumulator.impulse("resend")
    accumulator.impulse("other")
    assert accumulator.impulse_total("sends") == 2.0
    assert accumulator.impulse_total("weighted") == 0.5
    assert accumulator.interval_value("sends") == 2.0


def test_unknown_reward_names():
    accumulator = RewardAccumulator([RateReward("a", place_count("a"))])
    accumulator.start(Marking({"a": 0}))
    with pytest.raises(KeyError):
        accumulator.instant_value("zz")
    with pytest.raises(KeyError):
        accumulator.interval_value("zz")
    with pytest.raises(KeyError):
        accumulator.impulse_total("zz")
    with pytest.raises(KeyError):
        accumulator.trajectory("zz")


def test_reward_name_validation():
    with pytest.raises(ValueError):
        RateReward("", place_count("a"))
    with pytest.raises(ValueError):
        ImpulseReward("x", ())
