"""Unit tests for the six response mechanisms (using small live models)."""

from __future__ import annotations

import pytest

from repro.core import (
    Blacklist,
    BlacklistConfig,
    DetectionAlgorithm,
    DetectionAlgorithmConfig,
    GatewayScan,
    GatewayScanConfig,
    Immunization,
    ImmunizationConfig,
    Monitoring,
    MonitoringConfig,
    PhoneNetworkModel,
    UserEducation,
    UserEducationConfig,
    build_mechanism,
)
from repro.core.messages import MMSMessage
from repro.core.phone import Phone
from repro.des.random import StreamFactory


def make_model(small_scenario, *responses):
    config = small_scenario.with_responses(*responses) if responses else small_scenario
    return PhoneNetworkModel(config, StreamFactory(0))


def make_message(sender=0, recipients=(1,), invalid=0) -> MMSMessage:
    return MMSMessage(
        message_id=0,
        sender=sender,
        recipients=tuple(recipients),
        send_time=0.0,
        invalid_dials=invalid,
    )


class TestBuildMechanism:
    def test_dispatch_table(self):
        pairs = [
            (GatewayScanConfig(), GatewayScan),
            (DetectionAlgorithmConfig(), DetectionAlgorithm),
            (UserEducationConfig(), UserEducation),
            (ImmunizationConfig(), Immunization),
            (MonitoringConfig(), Monitoring),
            (BlacklistConfig(), Blacklist),
        ]
        for config, mechanism_class in pairs:
            assert isinstance(build_mechanism(config), mechanism_class)

    def test_unknown_config_rejected(self):
        with pytest.raises(TypeError):
            build_mechanism(object())


class TestGatewayScan:
    def test_blocks_only_after_activation(self):
        scan = GatewayScan(GatewayScanConfig(activation_delay=6.0))
        scan._on_detection = lambda t: None  # detach model coupling
        scan.activation_time = 10.0
        assert scan.message_filter(make_message(), now=9.9) is False
        assert scan.message_filter(make_message(), now=10.0) is True
        assert scan.blocked_messages == 1

    def test_inactive_without_detection(self):
        scan = GatewayScan(GatewayScanConfig())
        assert scan.message_filter(make_message(), now=100.0) is False

    def test_activation_from_detection(self, small_scenario):
        model = make_model(small_scenario, GatewayScanConfig(activation_delay=2.0))
        scan = model.mechanisms[0]
        model.detection.note_infection_count(
            model.detection.parameters.detectable_infections, 5.0
        )
        assert scan.activation_time == 7.0
        assert scan.installs_gateway_filter()


class TestDetectionAlgorithm:
    def test_blocks_fraction_after_activation(self, small_scenario):
        model = make_model(
            small_scenario, DetectionAlgorithmConfig(accuracy=0.7, analysis_period=1.0)
        )
        algorithm = model.mechanisms[0]
        model.detection.note_infection_count(
            model.detection.parameters.detectable_infections, 0.0
        )
        assert algorithm.activation_time == 1.0
        blocked = sum(
            algorithm.message_filter(make_message(sender=i % 7), now=2.0)
            for i in range(4000)
        )
        assert blocked / 4000 == pytest.approx(0.7, abs=0.03)
        assert algorithm.blocked_messages + algorithm.missed_messages == 4000

    def test_inactive_before_analysis_done(self, small_scenario):
        model = make_model(
            small_scenario, DetectionAlgorithmConfig(accuracy=1.0, analysis_period=5.0)
        )
        algorithm = model.mechanisms[0]
        model.detection.note_infection_count(
            model.detection.parameters.detectable_infections, 0.0
        )
        assert algorithm.message_filter(make_message(), now=4.0) is False
        assert algorithm.message_filter(make_message(), now=5.0) is True


class TestUserEducation:
    def test_scales_acceptance(self, small_scenario):
        model = make_model(small_scenario, UserEducationConfig(acceptance_scale=0.5))
        assert model.effective_acceptance_factor == pytest.approx(0.468 / 2)

    def test_effective_total(self):
        education = UserEducation(UserEducationConfig(acceptance_scale=0.5))
        assert education.effective_total_acceptance(0.468) == pytest.approx(
            0.21, abs=0.01
        )

    def test_stacks_multiplicatively(self, small_scenario):
        model = make_model(
            small_scenario,
            UserEducationConfig(acceptance_scale=0.5),
            UserEducationConfig(acceptance_scale=0.5),
        )
        assert model.effective_acceptance_factor == pytest.approx(0.468 / 4)


class TestImmunization:
    def test_patch_rollout_immunizes_population(self, small_scenario):
        config = ImmunizationConfig(development_time=1.0, deployment_window=1.0)
        model = make_model(small_scenario, config)
        mechanism = model.mechanisms[0]
        # Trigger detection immediately, then run past the rollout window.
        model.detection.note_infection_count(
            model.detection.parameters.detectable_infections, 0.0
        )
        model.sim.run(until=3.0)
        assert mechanism.patch_ready_time == 1.0
        susceptible_phones = sum(1 for p in model.phones if p.susceptible)
        assert mechanism.phones_immunized == susceptible_phones
        assert model.susceptible_remaining() == 0

    def test_quarantines_infected(self, small_scenario):
        config = ImmunizationConfig(development_time=0.5, deployment_window=0.5)
        model = make_model(small_scenario, config)
        model.seed_infection()
        patient_zero = model.phones[model.patient_zero]
        model.detection.note_infection_count(
            model.detection.parameters.detectable_infections, 0.0
        )
        model.sim.run(until=2.0)
        assert patient_zero.propagation_stopped
        assert model.mechanisms[0].phones_quarantined >= 1


class TestMonitoring:
    def make(self, threshold=3, window=1.0, wait=0.5) -> Monitoring:
        return Monitoring(
            MonitoringConfig(forced_wait=wait, window=window, threshold=threshold)
        )

    def test_flags_above_threshold_within_window(self):
        monitoring = self.make()
        phone = Phone(0, True, (1,))
        for i in range(4):
            monitoring.on_message_sent(phone, make_message(), now=0.1 * i)
        assert monitoring.is_flagged(0)

    def test_old_sends_expire_from_window(self):
        monitoring = self.make()
        phone = Phone(0, True, (1,))
        for i in range(10):
            monitoring.on_message_sent(phone, make_message(), now=2.0 * i)
        assert not monitoring.is_flagged(0)

    def test_forced_wait_applies_only_to_flagged(self):
        monitoring = self.make(wait=0.5)
        phone = Phone(0, True, (1,))
        other = Phone(1, True, (0,))
        for i in range(4):
            monitoring.on_message_sent(phone, make_message(), now=0.01 * i)
        assert monitoring.adjust_send_interval(phone, 0.1, now=1.0) == 0.5
        assert monitoring.adjust_send_interval(phone, 0.9, now=1.0) == 0.9
        assert monitoring.adjust_send_interval(other, 0.1, now=1.0) == 0.1

    def test_counts_invalid_dials_as_outgoing(self):
        monitoring = self.make()
        phone = Phone(0, True, ())
        for i in range(4):
            message = MMSMessage(
                message_id=i, sender=0, recipients=(), send_time=0.0, invalid_dials=1
            )
            monitoring.on_message_sent(phone, message, now=0.1 * i)
        assert monitoring.is_flagged(0)


class TestBlacklist:
    def make(self, threshold=3) -> Blacklist:
        blacklist = Blacklist(BlacklistConfig(threshold=threshold))
        blacklist._on_detection(0.0)  # counting active from t=0 for the test
        return blacklist

    def test_blocks_at_threshold(self):
        blacklist = self.make()
        phone = Phone(0, True, (1,))
        phone.infect(0.0)
        for i in range(3):
            blacklist.on_message_sent(phone, make_message(), now=float(i))
        assert 0 in blacklist.blacklisted_phones
        assert phone.outgoing_blocked

    def test_multi_recipient_message_counts_once(self):
        blacklist = self.make(threshold=3)
        phone = Phone(0, True, tuple(range(1, 50)))
        phone.infect(0.0)
        blacklist.on_message_sent(
            phone, make_message(recipients=tuple(range(1, 40))), now=0.0
        )
        assert blacklist.suspected_count(0) == 1
        assert not phone.outgoing_blocked

    def test_not_counting_before_detection(self):
        blacklist = Blacklist(BlacklistConfig(threshold=1))
        phone = Phone(0, True, (1,))
        phone.infect(0.0)
        blacklist.on_message_sent(phone, make_message(), now=0.0)
        assert not blacklist.counting
        assert blacklist.suspected_count(0) == 0
        assert not phone.outgoing_blocked

    def test_invalid_dials_count(self):
        blacklist = self.make(threshold=2)
        phone = Phone(0, True, ())
        phone.infect(0.0)
        for i in range(2):
            message = MMSMessage(
                message_id=i, sender=0, recipients=(), send_time=0.0, invalid_dials=1
            )
            blacklist.on_message_sent(phone, message, now=float(i))
        assert phone.outgoing_blocked
