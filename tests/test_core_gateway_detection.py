"""Tests for the MMS gateway and the detectability tracker."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import DetectionParameters, MMSGateway, MMSMessage
from repro.core.detection import DetectionTracker
from repro.des import Simulator


def make_message(message_id: int = 0, recipients=(1,)) -> MMSMessage:
    return MMSMessage(
        message_id=message_id,
        sender=0,
        recipients=tuple(recipients),
        send_time=0.0,
    )


class TestGateway:
    def test_delivers_after_delay(self):
        sim = Simulator()
        delivered = []
        gateway = MMSGateway(sim, np.random.default_rng(0), 0.05, delivered.append)
        assert gateway.submit(make_message()) is True
        assert delivered == []  # not yet: transit delay pending
        sim.run()
        assert len(delivered) == 1
        assert sim.now > 0.0

    def test_zero_delay_delivers_inline(self):
        sim = Simulator()
        delivered = []
        gateway = MMSGateway(sim, np.random.default_rng(0), 0.0, delivered.append)
        gateway.submit(make_message())
        assert len(delivered) == 1

    def test_filter_blocks(self):
        sim = Simulator()
        delivered = []
        gateway = MMSGateway(sim, np.random.default_rng(0), 0.0, delivered.append)
        gateway.add_filter(lambda message, now: True)
        assert gateway.submit(make_message()) is False
        assert delivered == []
        assert gateway.messages_blocked == 1
        assert gateway.messages_processed == 1
        assert gateway.messages_delivered == 0

    def test_filters_consulted_in_order_until_block(self):
        sim = Simulator()
        calls = []
        gateway = MMSGateway(sim, np.random.default_rng(0), 0.0, lambda m: None)
        gateway.add_filter(lambda m, t: (calls.append("first"), False)[1])
        gateway.add_filter(lambda m, t: (calls.append("second"), True)[1])
        gateway.add_filter(lambda m, t: (calls.append("third"), False)[1])
        gateway.submit(make_message())
        assert calls == ["first", "second"]

    def test_counts(self):
        sim = Simulator()
        gateway = MMSGateway(sim, np.random.default_rng(0), 0.0, lambda m: None)
        for i in range(5):
            gateway.submit(make_message(i))
        assert gateway.messages_processed == 5
        assert gateway.messages_delivered == 5

    def test_message_without_recipients_rejected(self):
        sim = Simulator()
        gateway = MMSGateway(sim, np.random.default_rng(0), 0.0, lambda m: None)
        bad = MMSMessage(
            message_id=0, sender=0, recipients=(), send_time=0.0, invalid_dials=3
        )
        with pytest.raises(ValueError):
            gateway.submit(bad)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            MMSGateway(Simulator(), np.random.default_rng(0), -1.0, lambda m: None)


class TestMessages:
    def test_addressed_count(self):
        message = MMSMessage(
            message_id=0, sender=1, recipients=(2, 3), send_time=0.0, invalid_dials=4
        )
        assert message.addressed_count == 6

    def test_validation(self):
        with pytest.raises(ValueError):
            MMSMessage(message_id=0, sender=-1, recipients=(1,), send_time=0.0)
        with pytest.raises(ValueError):
            MMSMessage(message_id=0, sender=0, recipients=(), send_time=0.0)
        with pytest.raises(ValueError):
            MMSMessage(
                message_id=0, sender=0, recipients=(1,), send_time=0.0, invalid_dials=-1
            )

    def test_id_allocator_monotone(self):
        from repro.core import MessageIdAllocator

        allocator = MessageIdAllocator()
        ids = [allocator.next_id() for _ in range(5)]
        assert ids == [0, 1, 2, 3, 4]


class TestDetectionTracker:
    def test_fires_once_at_threshold(self):
        tracker = DetectionTracker(DetectionParameters(detectable_infections=3))
        times = []
        tracker.subscribe(times.append)
        tracker.note_infection_count(1, 1.0)
        tracker.note_infection_count(2, 2.0)
        assert not tracker.detected
        tracker.note_infection_count(3, 3.0)
        assert tracker.detected
        assert tracker.detection_time == 3.0
        tracker.note_infection_count(4, 4.0)  # no re-fire
        assert times == [3.0]

    def test_late_subscriber_called_immediately(self):
        tracker = DetectionTracker(DetectionParameters(detectable_infections=1))
        tracker.note_infection_count(1, 5.0)
        times = []
        tracker.subscribe(times.append)
        assert times == [5.0]

    def test_multiple_subscribers(self):
        tracker = DetectionTracker(DetectionParameters(detectable_infections=1))
        calls = []
        tracker.subscribe(lambda t: calls.append("a"))
        tracker.subscribe(lambda t: calls.append("b"))
        tracker.note_infection_count(1, 1.0)
        assert calls == ["a", "b"]
