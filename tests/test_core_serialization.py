"""Tests for scenario JSON serialization."""

from __future__ import annotations

import json

import pytest

from repro.core import (
    BlacklistConfig,
    DetectionAlgorithmConfig,
    GatewayScanConfig,
    ImmunizationConfig,
    MonitoringConfig,
    UserEducationConfig,
    baseline_scenario,
)
from repro.core.serialization import (
    SerializationError,
    load_scenario,
    response_from_dict,
    response_to_dict,
    save_scenario,
    scenario_from_dict,
    scenario_from_json,
    scenario_to_dict,
    scenario_to_json,
)

ALL_RESPONSES = (
    GatewayScanConfig(activation_delay=12.0),
    DetectionAlgorithmConfig(accuracy=0.9, analysis_period=3.0),
    UserEducationConfig(acceptance_scale=0.25),
    ImmunizationConfig(development_time=48.0, deployment_window=24.0),
    MonitoringConfig(forced_wait=0.5, window=2.0, threshold=12),
    BlacklistConfig(threshold=20),
)


def full_scenario():
    return baseline_scenario(2).with_responses(*ALL_RESPONSES, suffix="all")


class TestRoundTrip:
    def test_every_paper_virus_round_trips(self):
        for virus in (1, 2, 3, 4):
            scenario = baseline_scenario(virus)
            restored = scenario_from_json(scenario_to_json(scenario))
            assert restored == scenario

    def test_all_response_kinds_round_trip(self):
        scenario = full_scenario()
        restored = scenario_from_json(scenario_to_json(scenario))
        assert restored == scenario
        assert len(restored.responses) == 6

    def test_file_round_trip(self, tmp_path):
        scenario = full_scenario()
        path = save_scenario(scenario, tmp_path / "nested" / "scenario.json")
        assert path.exists()
        assert load_scenario(path) == scenario

    def test_json_is_plain_and_sorted(self):
        document = json.loads(scenario_to_json(baseline_scenario(3)))
        assert document["format_version"] == 1
        assert document["virus"]["targeting"] == "random"
        assert document["virus"]["valid_number_fraction"] == pytest.approx(1 / 3)

    def test_response_dict_round_trip(self):
        for response in ALL_RESPONSES:
            assert response_from_dict(response_to_dict(response)) == response


class TestValidation:
    def test_unknown_keys_rejected(self):
        document = scenario_to_dict(baseline_scenario(1))
        document["virus"]["warp_speed"] = True
        with pytest.raises(SerializationError, match="unknown keys"):
            scenario_from_dict(document)

    def test_unknown_response_kind_rejected(self):
        document = scenario_to_dict(baseline_scenario(1))
        document["responses"] = [{"kind": "prayer"}]
        with pytest.raises(SerializationError, match="unknown response kind"):
            scenario_from_dict(document)

    def test_bad_enum_rejected(self):
        document = scenario_to_dict(baseline_scenario(1))
        document["virus"]["targeting"] = "telepathy"
        with pytest.raises(SerializationError, match="not one of"):
            scenario_from_dict(document)

    def test_missing_version_rejected(self):
        document = scenario_to_dict(baseline_scenario(1))
        del document["format_version"]
        with pytest.raises(SerializationError, match="format_version"):
            scenario_from_dict(document)

    def test_missing_required_keys_rejected(self):
        with pytest.raises(SerializationError, match="missing keys"):
            scenario_from_dict({"format_version": 1, "name": "x"})

    def test_invalid_json_rejected(self):
        with pytest.raises(SerializationError, match="invalid JSON"):
            scenario_from_json("{nope")

    def test_semantic_validation_still_applies(self):
        document = scenario_to_dict(baseline_scenario(1))
        document["virus"]["min_send_interval"] = -5.0
        with pytest.raises(SerializationError):
            scenario_from_dict(document)

    def test_defaults_fill_optional_sections(self):
        document = scenario_to_dict(baseline_scenario(1))
        del document["user"]
        del document["detection"]
        restored = scenario_from_dict(document)
        assert restored.user.acceptance_factor == pytest.approx(0.468)

    def test_loaded_scenario_runs(self, tmp_path):
        """A deserialized scenario is actually executable."""
        import dataclasses

        from repro.core import NetworkParameters
        from repro.core.simulation import run_scenario

        scenario = dataclasses.replace(
            baseline_scenario(3, duration=4.0),
            network=NetworkParameters(population=120, mean_contact_list_size=15.0),
        )
        path = save_scenario(scenario, tmp_path / "s.json")
        result = run_scenario(load_scenario(path), seed=0)
        assert result.total_infected >= 1


class TestResponseDeployment:
    """Deployment axes serialize opt-in: absent = byte-identical legacy."""

    def test_deployment_round_trips(self):
        from repro.core.parameters import ResponseDeployment

        scenario = full_scenario().with_deployment(
            ResponseDeployment(latency_hours=24.0, rollout_rate=0.25)
        )
        document = scenario_to_dict(scenario)
        assert document["deployment"] == {
            "latency_hours": 24.0,
            "rollout_rate": 0.25,
        }
        assert scenario_from_json(scenario_to_json(scenario)) == scenario

    def test_unset_deployment_is_omitted(self):
        for virus in (1, 2, 3, 4):
            assert "deployment" not in scenario_to_dict(baseline_scenario(virus))
        assert "deployment" not in scenario_to_dict(full_scenario())

    def test_none_deployment_is_byte_identical(self):
        """`with_deployment(None)` must not perturb canonical JSON.

        Frontier-aware code paths normalize configs through
        ``with_deployment``; a stray key would silently fork every
        cache entry and golden fixture recorded before the field
        existed.
        """
        scenario = full_scenario()
        assert scenario_to_json(scenario.with_deployment(None)) == (
            scenario_to_json(scenario)
        )

    def test_cache_keys_unchanged_without_deployment(self):
        from repro.core.cache import result_key

        scenario = full_scenario()
        assert result_key(scenario.with_deployment(None), 0, 0) == (
            result_key(scenario, 0, 0)
        )

    def test_deployment_changes_cache_key(self):
        from repro.core.cache import result_key
        from repro.core.parameters import ResponseDeployment

        scenario = full_scenario()
        deployed = scenario.with_deployment(
            ResponseDeployment(latency_hours=6.0)
        )
        assert result_key(deployed, 0, 0) != result_key(scenario, 0, 0)

    def test_legacy_document_loads_with_no_deployment(self):
        document = scenario_to_dict(full_scenario())
        assert "deployment" not in document
        assert scenario_from_dict(document).deployment is None

    def test_invalid_deployment_rejected(self):
        document = scenario_to_dict(full_scenario())
        document["deployment"] = {"latency_hours": -1.0}
        with pytest.raises(SerializationError):
            scenario_from_dict(document)
