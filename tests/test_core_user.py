"""Tests for the user consent model (paper §4.4)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.user import (
    ACCEPTANCE_NEGLIGIBLE_AFTER,
    PAPER_ACCEPTANCE_FACTOR,
    ConsentState,
    acceptance_probability,
    solve_acceptance_factor,
    total_acceptance_probability,
)


class TestAcceptanceProbability:
    def test_paper_values(self):
        assert acceptance_probability(0.468, 1) == pytest.approx(0.234)
        assert acceptance_probability(0.468, 2) == pytest.approx(0.117)
        assert acceptance_probability(0.468, 3) == pytest.approx(0.0585)

    def test_halves_each_message(self):
        for n in range(1, 20):
            assert acceptance_probability(0.468, n + 1) == pytest.approx(
                acceptance_probability(0.468, n) / 2.0
            )

    def test_negligible_cutoff(self):
        assert acceptance_probability(1.0, ACCEPTANCE_NEGLIGIBLE_AFTER + 1) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            acceptance_probability(0.468, 0)
        with pytest.raises(ValueError):
            acceptance_probability(1.5, 1)


class TestTotalAcceptance:
    def test_paper_headline_number(self):
        """AF = 0.468 ⇒ P(ever accept) ≈ 0.40 (the 320-phone plateau)."""
        total = total_acceptance_probability(PAPER_ACCEPTANCE_FACTOR)
        assert total == pytest.approx(0.40, abs=0.005)

    def test_halved_factor_roughly_halves_total(self):
        """Education at half the factor ⇒ total ≈ 0.21 (paper's '0.20')."""
        total = total_acceptance_probability(PAPER_ACCEPTANCE_FACTOR / 2)
        assert total == pytest.approx(0.21, abs=0.01)

    def test_quartered_factor(self):
        total = total_acceptance_probability(PAPER_ACCEPTANCE_FACTOR / 4)
        assert total == pytest.approx(0.11, abs=0.01)

    def test_zero_factor(self):
        assert total_acceptance_probability(0.0) == 0.0

    def test_monotone_in_factor(self):
        totals = [total_acceptance_probability(f / 10) for f in range(11)]
        assert totals == sorted(totals)

    def test_validation(self):
        with pytest.raises(ValueError):
            total_acceptance_probability(-0.1)


class TestSolver:
    def test_round_trip(self):
        for target in (0.05, 0.10, 0.20, 0.40, 0.60):
            factor = solve_acceptance_factor(target)
            assert total_acceptance_probability(factor) == pytest.approx(
                target, abs=1e-9
            )

    def test_zero(self):
        assert solve_acceptance_factor(0.0) == 0.0

    def test_unreachable_target(self):
        with pytest.raises(ValueError):
            solve_acceptance_factor(0.99)

    def test_validation(self):
        with pytest.raises(ValueError):
            solve_acceptance_factor(1.0)


class TestConsentState:
    def test_counts_received(self):
        state = ConsentState()
        rng = np.random.default_rng(0)
        for _ in range(5):
            state.receive_and_decide(0.0, rng)
        assert state.received_count == 5
        assert not state.accepted

    def test_always_rejects_with_zero_factor(self):
        state = ConsentState()
        rng = np.random.default_rng(0)
        assert not any(state.receive_and_decide(0.0, rng) for _ in range(50))

    def test_empirical_total_acceptance(self):
        """Monte Carlo: fraction of users ever accepting ≈ 0.40."""
        rng = np.random.default_rng(42)
        accepted = 0
        users = 4000
        for _ in range(users):
            state = ConsentState()
            for _ in range(40):  # enough messages to resolve
                if state.receive_and_decide(PAPER_ACCEPTANCE_FACTOR, rng):
                    accepted += 1
                    break
        assert accepted / users == pytest.approx(0.40, abs=0.025)

    def test_next_acceptance_probability(self):
        state = ConsentState()
        assert state.next_acceptance_probability(0.468) == pytest.approx(0.234)
        state.received_count = 1
        assert state.next_acceptance_probability(0.468) == pytest.approx(0.117)

    def test_no_draws_after_cutoff(self):
        state = ConsentState()
        state.received_count = ACCEPTANCE_NEGLIGIBLE_AFTER
        rng = np.random.default_rng(0)
        assert state.receive_and_decide(1.0, rng) is False
        assert state.received_count == ACCEPTANCE_NEGLIGIBLE_AFTER + 1
